use std::fmt;
use std::net::Ipv4Addr;

use sdx_ip::MacAddr;
use serde::{Deserialize, Serialize};

use crate::{Field, Value};

/// A located packet: a map from header fields to raw values.
///
/// Following Pyretic, the packet's location is just another field (`Port`),
/// so policies move packets by modifying it. Fields a packet does not carry
/// (e.g. transport ports on an ARP frame) are simply absent.
///
/// The representation is a presence bitmask plus a fixed value slot per
/// [`Field`] — fully inline, so cloning a packet (which the data-plane hot
/// path does once per emitted copy) never touches the heap. The observable
/// behavior is that of an ordered `Field → u64` map: iteration yields
/// present fields in `Field` order, and the `Ord` impl compares packets as
/// the lexicographic sequence of their `(field, value)` pairs, exactly as
/// the previous `BTreeMap` representation did (witness selection in the
/// analyzers picks the minimum of a `BTreeSet<Packet>`, so the order is
/// semantically load-bearing).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Bit `f as usize` set iff field `f` is present.
    mask: u16,
    /// Raw value per field, indexed by `Field as usize`. **Invariant:**
    /// slots whose mask bit is clear hold `0`, so the derived `PartialEq`/
    /// `Hash` agree with map equality.
    values: [u64; Field::ALL.len()],
}

impl Packet {
    /// An empty packet with no fields set.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Builder-style field assignment.
    pub fn with(mut self, field: Field, value: impl Into<Value>) -> Self {
        self.set(field, value);
        self
    }

    /// Set a field in place.
    pub fn set(&mut self, field: Field, value: impl Into<Value>) {
        let i = field as usize;
        self.mask |= 1 << i;
        self.values[i] = value.into().0;
    }

    /// The raw value of a field, if present.
    #[inline]
    pub fn get(&self, field: Field) -> Option<u64> {
        let i = field as usize;
        if self.mask & (1 << i) != 0 {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// Remove a field (the packet no longer carries the header), returning
    /// the previous value if any.
    pub fn unset(&mut self, field: Field) -> Option<u64> {
        let i = field as usize;
        if self.mask & (1 << i) == 0 {
            return None;
        }
        self.mask &= !(1 << i);
        Some(std::mem::take(&mut self.values[i]))
    }

    /// The packet's current location (the `Port` field).
    pub fn port(&self) -> Option<u32> {
        self.get(Field::Port).map(|v| v as u32)
    }

    /// The destination IP, if present.
    pub fn dst_ip(&self) -> Option<Ipv4Addr> {
        self.get(Field::DstIp).map(|v| Ipv4Addr::from(v as u32))
    }

    /// The source IP, if present.
    pub fn src_ip(&self) -> Option<Ipv4Addr> {
        self.get(Field::SrcIp).map(|v| Ipv4Addr::from(v as u32))
    }

    /// The destination MAC, if present.
    pub fn dst_mac(&self) -> Option<MacAddr> {
        self.get(Field::DstMac).map(MacAddr::from_u64)
    }

    /// The source MAC, if present.
    pub fn src_mac(&self) -> Option<MacAddr> {
        self.get(Field::SrcMac).map(MacAddr::from_u64)
    }

    /// Iterate over `(field, raw value)` pairs, in `Field` order.
    pub fn iter(&self) -> impl Iterator<Item = (&Field, &u64)> + '_ {
        Field::ALL
            .iter()
            .zip(self.values.iter())
            .filter(|(f, _)| self.mask & (1 << (**f as usize)) != 0)
    }

    /// A conventional IPv4/UDP test packet, convenient in tests and
    /// simulations.
    pub fn udp(
        port: u32,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        Packet::new()
            .with(Field::Port, port)
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 17u8)
            .with(Field::SrcIp, src_ip)
            .with(Field::DstIp, dst_ip)
            .with(Field::SrcPort, src_port)
            .with(Field::DstPort, dst_port)
    }

    /// A conventional IPv4/TCP test packet.
    pub fn tcp(
        port: u32,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        Packet::udp(port, src_ip, dst_ip, src_port, dst_port).with(Field::IpProto, 6u8)
    }
}

impl Ord for Packet {
    /// Lexicographic over the present `(field, value)` pairs in field order
    /// — identical to the ordering of the map representation this struct
    /// replaced, which analyzer witness selection depends on.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

impl PartialOrd for Packet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (field, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", field, field.render(*v))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let p = Packet::udp(
            1,
            "10.0.0.1".parse().unwrap(),
            "20.0.0.2".parse().unwrap(),
            999,
            80,
        );
        assert_eq!(p.port(), Some(1));
        assert_eq!(p.src_ip().unwrap().to_string(), "10.0.0.1");
        assert_eq!(p.dst_ip().unwrap().to_string(), "20.0.0.2");
        assert_eq!(p.get(Field::DstPort), Some(80));
        assert_eq!(p.get(Field::IpProto), Some(17));
        assert_eq!(p.dst_mac(), None);
    }

    #[test]
    fn set_overwrites() {
        let mut p = Packet::new().with(Field::DstPort, 80u16);
        p.set(Field::DstPort, 443u16);
        assert_eq!(p.get(Field::DstPort), Some(443));
    }

    #[test]
    fn tcp_sets_proto_six() {
        let p = Packet::tcp(0, Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, 1, 2);
        assert_eq!(p.get(Field::IpProto), Some(6));
    }

    #[test]
    fn display_shows_rendered_values() {
        let p = Packet::new()
            .with(Field::DstIp, Ipv4Addr::new(10, 0, 0, 1))
            .with(Field::DstMac, MacAddr::from_u64(0x0200_0000_0001));
        let s = p.to_string();
        assert!(s.contains("dstip=10.0.0.1"), "{s}");
        assert!(s.contains("dstmac=02:00:00:00:00:01"), "{s}");
    }

    #[test]
    fn unset_clears_value_and_equality_sees_it() {
        let mut p = Packet::new().with(Field::DstPort, 80u16);
        assert_eq!(p.unset(Field::DstPort), Some(80));
        assert_eq!(p.unset(Field::DstPort), None);
        assert_eq!(p, Packet::new());
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |p: &Packet| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&p), hash(&Packet::new()));
    }

    #[test]
    fn ordering_is_lexicographic_over_present_pairs() {
        // Same semantics the BTreeMap representation had: compare present
        // (field, value) pairs in field order; a strict prefix sorts first.
        let a = Packet::new().with(Field::Port, 1u32);
        let b = Packet::new()
            .with(Field::Port, 1u32)
            .with(Field::DstPort, 9u16);
        let c = Packet::new().with(Field::Port, 2u32);
        let d = Packet::new().with(Field::SrcMac, 0u64);
        assert!(a < b, "prefix sorts before extension");
        assert!(b < c, "value comparison on the first differing field");
        assert!(c < d, "earlier field sorts before later field");
        let mut set = std::collections::BTreeSet::new();
        set.extend([c.clone(), d.clone(), b.clone(), a.clone()]);
        let sorted: Vec<Packet> = set.into_iter().collect();
        assert_eq!(sorted, vec![a, b, c, d]);
    }

    #[test]
    fn iter_yields_field_order() {
        let p = Packet::new()
            .with(Field::DstPort, 80u16)
            .with(Field::Port, 1u32)
            .with(Field::SrcIp, Ipv4Addr::new(9, 9, 9, 9));
        let fields: Vec<Field> = p.iter().map(|(f, _)| *f).collect();
        assert_eq!(fields, vec![Field::Port, Field::SrcIp, Field::DstPort]);
    }
}
