use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

use sdx_ip::MacAddr;
use serde::{Deserialize, Serialize};

use crate::{Field, Value};

/// A located packet: a map from header fields to raw values.
///
/// Following Pyretic, the packet's location is just another field (`Port`),
/// so policies move packets by modifying it. Fields a packet does not carry
/// (e.g. transport ports on an ARP frame) are simply absent.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Packet {
    fields: BTreeMap<Field, u64>,
}

impl Packet {
    /// An empty packet with no fields set.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Builder-style field assignment.
    pub fn with(mut self, field: Field, value: impl Into<Value>) -> Self {
        self.fields.insert(field, value.into().0);
        self
    }

    /// Set a field in place.
    pub fn set(&mut self, field: Field, value: impl Into<Value>) {
        self.fields.insert(field, value.into().0);
    }

    /// The raw value of a field, if present.
    pub fn get(&self, field: Field) -> Option<u64> {
        self.fields.get(&field).copied()
    }

    /// Remove a field (the packet no longer carries the header), returning
    /// the previous value if any.
    pub fn unset(&mut self, field: Field) -> Option<u64> {
        self.fields.remove(&field)
    }

    /// The packet's current location (the `Port` field).
    pub fn port(&self) -> Option<u32> {
        self.get(Field::Port).map(|v| v as u32)
    }

    /// The destination IP, if present.
    pub fn dst_ip(&self) -> Option<Ipv4Addr> {
        self.get(Field::DstIp).map(|v| Ipv4Addr::from(v as u32))
    }

    /// The source IP, if present.
    pub fn src_ip(&self) -> Option<Ipv4Addr> {
        self.get(Field::SrcIp).map(|v| Ipv4Addr::from(v as u32))
    }

    /// The destination MAC, if present.
    pub fn dst_mac(&self) -> Option<MacAddr> {
        self.get(Field::DstMac).map(MacAddr::from_u64)
    }

    /// The source MAC, if present.
    pub fn src_mac(&self) -> Option<MacAddr> {
        self.get(Field::SrcMac).map(MacAddr::from_u64)
    }

    /// Iterate over `(field, raw value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Field, &u64)> {
        self.fields.iter()
    }

    /// A conventional IPv4/UDP test packet, convenient in tests and
    /// simulations.
    pub fn udp(
        port: u32,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        Packet::new()
            .with(Field::Port, port)
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 17u8)
            .with(Field::SrcIp, src_ip)
            .with(Field::DstIp, dst_ip)
            .with(Field::SrcPort, src_port)
            .with(Field::DstPort, dst_port)
    }

    /// A conventional IPv4/TCP test packet.
    pub fn tcp(
        port: u32,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        Packet::udp(port, src_ip, dst_ip, src_port, dst_port).with(Field::IpProto, 6u8)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (field, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", field, field.render(*v))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let p = Packet::udp(
            1,
            "10.0.0.1".parse().unwrap(),
            "20.0.0.2".parse().unwrap(),
            999,
            80,
        );
        assert_eq!(p.port(), Some(1));
        assert_eq!(p.src_ip().unwrap().to_string(), "10.0.0.1");
        assert_eq!(p.dst_ip().unwrap().to_string(), "20.0.0.2");
        assert_eq!(p.get(Field::DstPort), Some(80));
        assert_eq!(p.get(Field::IpProto), Some(17));
        assert_eq!(p.dst_mac(), None);
    }

    #[test]
    fn set_overwrites() {
        let mut p = Packet::new().with(Field::DstPort, 80u16);
        p.set(Field::DstPort, 443u16);
        assert_eq!(p.get(Field::DstPort), Some(443));
    }

    #[test]
    fn tcp_sets_proto_six() {
        let p = Packet::tcp(0, Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, 1, 2);
        assert_eq!(p.get(Field::IpProto), Some(6));
    }

    #[test]
    fn display_shows_rendered_values() {
        let p = Packet::new()
            .with(Field::DstIp, Ipv4Addr::new(10, 0, 0, 1))
            .with(Field::DstMac, MacAddr::from_u64(0x0200_0000_0001));
        let s = p.to_string();
        assert!(s.contains("dstip=10.0.0.1"), "{s}");
        assert!(s.contains("dstmac=02:00:00:00:00:01"), "{s}");
    }
}
