use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Field, Packet, Predicate, Value};

/// A packet-processing policy: a function from a located packet to a *set* of
/// located packets (empty set = drop, singleton = forward, larger =
/// multicast), exactly as in Pyretic and §3.1 of the paper.
///
/// Policies compose with `+` (parallel composition: apply both, union the
/// outputs) and `>>` (sequential composition: feed each output of the first
/// into the second), mirroring the paper's syntax:
///
/// ```
/// use sdx_policy::{fwd, match_, Field};
///
/// let b = 101u32; // port id of participant B's virtual switch
/// let c = 102u32;
/// let app_specific_peering =
///     (match_(Field::DstPort, 80u16) >> fwd(b)) + (match_(Field::DstPort, 443u16) >> fwd(c));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Pass packets matching the predicate unchanged; drop the rest.
    Filter(Predicate),
    /// Overwrite one header field.
    Mod(Field, u64),
    /// Apply every sub-policy to the packet and union the results.
    Parallel(Vec<Policy>),
    /// Thread the packet through the sub-policies left to right.
    Sequential(Vec<Policy>),
    /// `if_(pred, then, else)` — Pyretic's conditional.
    IfThenElse(Predicate, Box<Policy>, Box<Policy>),
}

impl Policy {
    /// The identity policy: pass every packet unchanged.
    pub fn id() -> Policy {
        Policy::Filter(Predicate::True)
    }

    /// The drop policy.
    pub fn drop() -> Policy {
        Policy::Filter(Predicate::False)
    }

    /// `fwd(port)` — move the packet to a port (physical or virtual).
    pub fn fwd(port: u32) -> Policy {
        Policy::Mod(Field::Port, port as u64)
    }

    /// `mod(field = value)` — rewrite one header field.
    pub fn modify(field: Field, value: impl Into<Value>) -> Policy {
        Policy::Mod(field, value.into().0)
    }

    /// Pyretic's `if_()` operator: apply `then` to packets matching `pred`
    /// and `otherwise` to the rest. The SDX runtime uses this to splice each
    /// participant's policy with its default BGP forwarding policy (§4.1).
    pub fn if_then_else(pred: Predicate, then: Policy, otherwise: Policy) -> Policy {
        Policy::IfThenElse(pred, Box::new(then), Box::new(otherwise))
    }

    /// Parallel composition of many policies. Empty input is `drop` (a
    /// parallel composition with no branches emits nothing).
    pub fn parallel(policies: impl IntoIterator<Item = Policy>) -> Policy {
        let mut v: Vec<Policy> = Vec::new();
        for p in policies {
            match p {
                // Flatten nested parallel compositions.
                Policy::Parallel(inner) => v.extend(inner),
                Policy::Filter(Predicate::False) => {} // drop contributes nothing
                other => v.push(other),
            }
        }
        match v.len() {
            0 => Policy::drop(),
            1 => v.pop().unwrap(),
            _ => Policy::Parallel(v),
        }
    }

    /// Sequential composition of many policies. Empty input is `id`.
    pub fn sequential(policies: impl IntoIterator<Item = Policy>) -> Policy {
        let mut v: Vec<Policy> = Vec::new();
        for p in policies {
            match p {
                Policy::Sequential(inner) => v.extend(inner),
                Policy::Filter(Predicate::True) => {} // identity is a no-op
                other => v.push(other),
            }
        }
        if v.iter()
            .any(|p| matches!(p, Policy::Filter(Predicate::False)))
        {
            return Policy::drop();
        }
        match v.len() {
            0 => Policy::id(),
            1 => v.pop().unwrap(),
            _ => Policy::Sequential(v),
        }
    }

    /// Restrict the policy to packets matching `pred` (prepends a filter).
    pub fn restrict(self, pred: Predicate) -> Policy {
        Policy::sequential([Policy::Filter(pred), self])
    }

    /// Evaluate the policy on a packet, producing the set of output packets.
    ///
    /// This is the *specification* the classifier compiler is tested against:
    /// for every policy `p` and packet `k`,
    /// `compile(p).evaluate(k) == p.eval(k)`.
    pub fn eval(&self, pkt: &Packet) -> BTreeSet<Packet> {
        match self {
            Policy::Filter(pred) => {
                if pred.eval(pkt) {
                    BTreeSet::from([pkt.clone()])
                } else {
                    BTreeSet::new()
                }
            }
            Policy::Mod(field, value) => {
                let mut out = pkt.clone();
                out.set(*field, *value);
                BTreeSet::from([out])
            }
            Policy::Parallel(ps) => ps.iter().flat_map(|p| p.eval(pkt)).collect(),
            Policy::Sequential(ps) => {
                let mut current = BTreeSet::from([pkt.clone()]);
                for p in ps {
                    current = current.iter().flat_map(|k| p.eval(k)).collect();
                    if current.is_empty() {
                        break;
                    }
                }
                current
            }
            Policy::IfThenElse(pred, then, otherwise) => {
                if pred.eval(pkt) {
                    then.eval(pkt)
                } else {
                    otherwise.eval(pkt)
                }
            }
        }
    }

    /// Structural size (AST nodes), used in compiler statistics.
    pub fn size(&self) -> usize {
        match self {
            Policy::Filter(p) => p.size(),
            Policy::Mod(..) => 1,
            Policy::Parallel(ps) | Policy::Sequential(ps) => {
                1 + ps.iter().map(Policy::size).sum::<usize>()
            }
            Policy::IfThenElse(p, a, b) => 1 + p.size() + a.size() + b.size(),
        }
    }
}

/// `p1 + p2` — parallel composition.
impl std::ops::Add for Policy {
    type Output = Policy;
    fn add(self, rhs: Policy) -> Policy {
        Policy::parallel([self, rhs])
    }
}

/// `p1 >> p2` — sequential composition.
impl std::ops::Shr for Policy {
    type Output = Policy;
    fn shr(self, rhs: Policy) -> Policy {
        Policy::sequential([self, rhs])
    }
}

/// A predicate used where a policy is expected acts as a filter, so
/// `match_(...) >> fwd(B)` works exactly like in the paper.
impl From<Predicate> for Policy {
    fn from(pred: Predicate) -> Self {
        Policy::Filter(pred)
    }
}

/// `pred >> policy` — filter then apply.
impl std::ops::Shr<Policy> for Predicate {
    type Output = Policy;
    fn shr(self, rhs: Policy) -> Policy {
        Policy::sequential([Policy::Filter(self), rhs])
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Filter(p) => write!(f, "{p}"),
            Policy::Mod(field, v) => {
                if *field == Field::Port {
                    write!(f, "fwd({v})")
                } else {
                    write!(f, "mod({}={})", field, field.render(*v))
                }
            }
            Policy::Parallel(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Policy::Sequential(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " >> ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Policy::IfThenElse(pred, a, b) => write!(f, "if_({pred}, {a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pkt(dst_port: u16) -> Packet {
        Packet::udp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            999,
            dst_port,
        )
    }

    #[test]
    fn filter_passes_or_drops() {
        let p = Policy::Filter(Predicate::test(Field::DstPort, 80u16));
        assert_eq!(p.eval(&pkt(80)).len(), 1);
        assert!(p.eval(&pkt(443)).is_empty());
    }

    #[test]
    fn modify_rewrites_field() {
        let p = Policy::modify(Field::DstIp, Ipv4Addr::new(99, 0, 0, 1));
        let out = p.eval(&pkt(80));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.iter().next().unwrap().dst_ip().unwrap().to_string(),
            "99.0.0.1"
        );
    }

    #[test]
    fn fwd_moves_packet() {
        let out = Policy::fwd(7).eval(&pkt(80));
        assert_eq!(out.iter().next().unwrap().port(), Some(7));
    }

    #[test]
    fn paper_application_specific_peering_example() {
        // (match(dstport=80) >> fwd(B)) + (match(dstport=443) >> fwd(C))
        let b = 101u32;
        let c = 102u32;
        let policy = (Predicate::test(Field::DstPort, 80u16) >> Policy::fwd(b))
            + (Predicate::test(Field::DstPort, 443u16) >> Policy::fwd(c));
        assert_eq!(policy.eval(&pkt(80)).iter().next().unwrap().port(), Some(b));
        assert_eq!(
            policy.eval(&pkt(443)).iter().next().unwrap().port(),
            Some(c)
        );
        // "If neither of the two policies matches, the packet is dropped."
        assert!(policy.eval(&pkt(22)).is_empty());
    }

    #[test]
    fn parallel_unions_multicast() {
        let p = Policy::fwd(1) + Policy::fwd(2);
        assert_eq!(p.eval(&pkt(80)).len(), 2);
    }

    #[test]
    fn sequential_threads_modifications() {
        let p = Policy::modify(Field::DstPort, 443u16)
            >> Policy::Filter(Predicate::test(Field::DstPort, 443u16));
        assert_eq!(p.eval(&pkt(80)).len(), 1);
        let q = Policy::Filter(Predicate::test(Field::DstPort, 443u16))
            >> Policy::modify(Field::DstPort, 80u16);
        assert!(q.eval(&pkt(80)).is_empty());
    }

    #[test]
    fn if_then_else_branches() {
        let p = Policy::if_then_else(
            Predicate::test(Field::DstPort, 80u16),
            Policy::fwd(1),
            Policy::fwd(2),
        );
        assert_eq!(p.eval(&pkt(80)).iter().next().unwrap().port(), Some(1));
        assert_eq!(p.eval(&pkt(22)).iter().next().unwrap().port(), Some(2));
    }

    #[test]
    fn constructors_simplify() {
        assert_eq!(Policy::parallel([]), Policy::drop());
        assert_eq!(Policy::sequential([]), Policy::id());
        assert_eq!(Policy::parallel([Policy::fwd(1)]), Policy::fwd(1));
        assert_eq!(
            Policy::sequential([Policy::id(), Policy::fwd(1), Policy::id()]),
            Policy::fwd(1)
        );
        assert_eq!(
            Policy::sequential([Policy::fwd(1), Policy::drop()]),
            Policy::drop()
        );
        // Nested compositions flatten.
        let p = (Policy::fwd(1) + Policy::fwd(2)) + Policy::fwd(3);
        assert!(matches!(&p, Policy::Parallel(v) if v.len() == 3));
    }

    #[test]
    fn drop_in_parallel_is_identity_element() {
        let p = Policy::parallel([Policy::drop(), Policy::fwd(1)]);
        assert_eq!(p, Policy::fwd(1));
    }

    #[test]
    fn restrict_prepends_filter() {
        let p = Policy::fwd(1).restrict(Predicate::test(Field::DstPort, 80u16));
        assert_eq!(p.eval(&pkt(80)).len(), 1);
        assert!(p.eval(&pkt(443)).is_empty());
    }

    #[test]
    fn multicast_through_sequential() {
        // Two copies, each then modified.
        let p = (Policy::fwd(1) + Policy::fwd(2)) >> Policy::modify(Field::DstPort, 53u16);
        let out = p.eval(&pkt(80));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|k| k.get(Field::DstPort) == Some(53)));
    }

    #[test]
    fn display_reads_like_the_paper() {
        let policy = (Predicate::test(Field::DstPort, 80u16) >> Policy::fwd(101))
            + (Predicate::test(Field::DstPort, 443u16) >> Policy::fwd(102));
        let s = policy.to_string();
        assert!(s.contains("match(dstport=80) >> fwd(101)"), "{s}");
        assert!(s.contains("+"), "{s}");
    }
}
