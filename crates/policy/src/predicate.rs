use std::collections::BTreeSet;
use std::fmt;

use sdx_ip::PrefixSet;
use serde::{Deserialize, Serialize};

use crate::{Field, Packet, Pattern, Value};

/// A boolean predicate over packets — the `match(...)` half of the paper's
/// policy language, closed under conjunction, disjunction, and negation.
///
/// `InSet` and `InPrefixes` are first-class (rather than desugared into huge
/// `Or` chains) because the SDX's BGP-consistency transformation inserts
/// filters over thousands of destination prefixes; keeping them atomic lets
/// the compiler emit one classifier rule per member instead of taking a
/// quadratic product.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Matches every packet.
    True,
    /// Matches no packet.
    False,
    /// The field must satisfy the pattern.
    Test(Field, Pattern),
    /// The field must equal one of the listed raw values.
    InSet(Field, BTreeSet<u64>),
    /// The field (an IP) must fall in one of the prefixes.
    InPrefixes(Field, PrefixSet),
    /// Both sub-predicates must hold.
    And(Box<Predicate>, Box<Predicate>),
    /// At least one sub-predicate must hold.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate must not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `match(field = value)` — test a field against an exact value.
    pub fn test(field: Field, value: impl Into<Value>) -> Predicate {
        Predicate::Test(field, Pattern::Exact(value.into().0))
    }

    /// Test an IP field against a CIDR prefix.
    pub fn test_prefix(field: Field, prefix: sdx_ip::Prefix) -> Predicate {
        Predicate::Test(field, Pattern::from(prefix))
    }

    /// Test an IP field against a set of prefixes (matches if any covers it).
    /// An empty set is `False`.
    pub fn in_prefixes(field: Field, prefixes: PrefixSet) -> Predicate {
        if prefixes.is_empty() {
            Predicate::False
        } else {
            Predicate::InPrefixes(field, prefixes)
        }
    }

    /// Test a field against a set of exact values. An empty set is `False`.
    pub fn in_set(field: Field, values: impl IntoIterator<Item = u64>) -> Predicate {
        let set: BTreeSet<u64> = values.into_iter().collect();
        if set.is_empty() {
            Predicate::False
        } else {
            Predicate::InSet(field, set)
        }
    }

    /// Conjunction, with shallow simplification.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction, with shallow simplification.
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
            (Predicate::False, p) | (p, Predicate::False) => p,
            (a, b) => Predicate::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation, with double-negation elimination.
    pub fn negate(self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            p => Predicate::Not(Box::new(p)),
        }
    }

    /// Disjunction of many predicates. An empty iterator is `False`.
    pub fn any_of(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        preds.into_iter().fold(Predicate::False, |acc, p| acc.or(p))
    }

    /// Conjunction of many predicates. An empty iterator is `True`.
    pub fn all_of(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        preds.into_iter().fold(Predicate::True, |acc, p| acc.and(p))
    }

    /// Evaluate against a packet. A `Test` on a missing field is false (a
    /// packet without the header cannot satisfy a constraint on it), and its
    /// negation is therefore true.
    pub fn eval(&self, pkt: &Packet) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Test(f, pat) => pkt.get(*f).map(|v| pat.matches(v)).unwrap_or(false),
            Predicate::InSet(f, set) => pkt.get(*f).map(|v| set.contains(&v)).unwrap_or(false),
            Predicate::InPrefixes(f, set) => pkt
                .get(*f)
                .map(|v| set.covers_addr((v as u32).into()))
                .unwrap_or(false),
            Predicate::And(a, b) => a.eval(pkt) && b.eval(pkt),
            Predicate::Or(a, b) => a.eval(pkt) || b.eval(pkt),
            Predicate::Not(p) => !p.eval(pkt),
        }
    }

    /// Is the predicate negation-free?
    ///
    /// Positive predicates compile to classifiers whose drop rules are pure
    /// residue (every packet they capture genuinely fails the predicate),
    /// which lets the SDX stack clause rule-lists by priority. The SDX
    /// controller therefore requires participant clause matches to be
    /// positive.
    pub fn is_positive(&self) -> bool {
        match self {
            Predicate::True
            | Predicate::False
            | Predicate::Test(..)
            | Predicate::InSet(..)
            | Predicate::InPrefixes(..) => true,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.is_positive() && b.is_positive(),
            Predicate::Not(_) => false,
        }
    }

    /// Structural size (number of AST nodes), used by compiler heuristics and
    /// the memoization statistics.
    pub fn size(&self) -> usize {
        match self {
            Predicate::True | Predicate::False | Predicate::Test(..) => 1,
            Predicate::InSet(_, s) => 1 + s.len(),
            Predicate::InPrefixes(_, s) => 1 + s.len(),
            Predicate::And(a, b) | Predicate::Or(a, b) => 1 + a.size() + b.size(),
            Predicate::Not(p) => 1 + p.size(),
        }
    }
}

impl std::ops::BitAnd for Predicate {
    type Output = Predicate;
    fn bitand(self, rhs: Predicate) -> Predicate {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Predicate {
    type Output = Predicate;
    fn bitor(self, rhs: Predicate) -> Predicate {
        self.or(rhs)
    }
}

impl std::ops::Not for Predicate {
    type Output = Predicate;
    fn not(self) -> Predicate {
        self.negate()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Test(field, pat) => {
                write!(f, "match({}={})", field, pat.render(*field))
            }
            Predicate::InSet(field, set) => {
                if set.len() <= 8 {
                    write!(f, "match({} in {{", field)?;
                    for (i, v) in set.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", field.render(*v))?;
                    }
                    write!(f, "}})")
                } else {
                    write!(f, "match({} in {{{} values}})", field, set.len())
                }
            }
            Predicate::InPrefixes(field, set) => {
                if set.len() <= 8 {
                    write!(f, "match({} in {{", field)?;
                    for (i, p) in set.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, "}})")
                } else {
                    write!(f, "match({} in {{{} prefixes}})", field, set.len())
                }
            }
            Predicate::And(a, b) => write!(f, "({a} && {b})"),
            Predicate::Or(a, b) => write!(f, "({a} || {b})"),
            Predicate::Not(p) => write!(f, "!{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pkt80() -> Packet {
        Packet::udp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            1234,
            80,
        )
    }

    #[test]
    fn constants() {
        assert!(Predicate::True.eval(&pkt80()));
        assert!(!Predicate::False.eval(&pkt80()));
    }

    #[test]
    fn test_field() {
        assert!(Predicate::test(Field::DstPort, 80u16).eval(&pkt80()));
        assert!(!Predicate::test(Field::DstPort, 443u16).eval(&pkt80()));
    }

    #[test]
    fn missing_field_is_false_and_negation_true() {
        let arp = Packet::new().with(Field::EthType, 0x0806u16);
        let p = Predicate::test(Field::DstPort, 80u16);
        assert!(!p.eval(&arp));
        assert!(p.negate().eval(&arp));
    }

    #[test]
    fn prefix_and_set_predicates() {
        let pred = Predicate::test_prefix(Field::SrcIp, "10.0.0.0/8".parse().unwrap());
        assert!(pred.eval(&pkt80()));
        let in_set = Predicate::in_set(Field::DstPort, [80u64, 443]);
        assert!(in_set.eval(&pkt80()));
        let prefixes: PrefixSet = ["20.0.0.0/8".parse().unwrap()].into_iter().collect();
        assert!(Predicate::in_prefixes(Field::DstIp, prefixes).eval(&pkt80()));
        assert_eq!(
            Predicate::in_prefixes(Field::DstIp, PrefixSet::new()),
            Predicate::False
        );
        assert_eq!(Predicate::in_set(Field::DstPort, []), Predicate::False);
    }

    #[test]
    fn boolean_operators() {
        let t = Predicate::test(Field::DstPort, 80u16);
        let f = Predicate::test(Field::DstPort, 443u16);
        assert!((t.clone() & Predicate::True).eval(&pkt80()));
        assert!((f.clone() | t.clone()).eval(&pkt80()));
        assert!((!f.clone()).eval(&pkt80()));
        assert!(!(t.clone() & f).eval(&pkt80()));
    }

    #[test]
    fn simplification() {
        let t = Predicate::test(Field::DstPort, 80u16);
        assert_eq!(t.clone().and(Predicate::True), t);
        assert_eq!(t.clone().and(Predicate::False), Predicate::False);
        assert_eq!(t.clone().or(Predicate::False), t);
        assert_eq!(t.clone().or(Predicate::True), Predicate::True);
        assert_eq!(t.clone().negate().negate(), t);
    }

    #[test]
    fn any_of_all_of() {
        assert_eq!(Predicate::any_of([]), Predicate::False);
        assert_eq!(Predicate::all_of([]), Predicate::True);
        let p = Predicate::any_of([
            Predicate::test(Field::DstPort, 443u16),
            Predicate::test(Field::DstPort, 80u16),
        ]);
        assert!(p.eval(&pkt80()));
    }

    #[test]
    fn size_counts_nodes() {
        let p = Predicate::test(Field::DstPort, 80u16).and(Predicate::test(Field::SrcPort, 1u16));
        assert_eq!(p.size(), 3);
        assert_eq!(Predicate::in_set(Field::DstPort, [1, 2, 3]).size(), 4);
    }
}
