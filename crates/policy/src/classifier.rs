use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Field, Match, Packet, Value};

/// One output transformation of a rule: a set of field assignments applied to
/// the matched packet. The identity action (no assignments) passes the packet
/// through unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Action {
    assignments: BTreeMap<Field, u64>,
}

impl Action {
    /// The identity action.
    pub fn identity() -> Self {
        Action::default()
    }

    /// An action assigning a single field.
    pub fn set(field: Field, value: impl Into<Value>) -> Self {
        let mut a = Action::default();
        a.assignments.insert(field, value.into().0);
        a
    }

    /// The value this action assigns to `field`, if any.
    pub fn get(&self, field: Field) -> Option<u64> {
        self.assignments.get(&field).copied()
    }

    /// Add/overwrite an assignment, builder style.
    pub fn with(mut self, field: Field, value: impl Into<Value>) -> Self {
        self.assignments.insert(field, value.into().0);
        self
    }

    /// Is this the identity action?
    pub fn is_identity(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Apply the assignments to a packet.
    pub fn apply(&self, pkt: &Packet) -> Packet {
        let mut out = pkt.clone();
        for (f, v) in &self.assignments {
            out.set(*f, *v);
        }
        out
    }

    /// Sequential composition: apply `self`, then `later`. Later assignments
    /// overwrite earlier ones.
    pub fn then(&self, later: &Action) -> Action {
        let mut out = self.clone();
        for (f, v) in &later.assignments {
            out.assignments.insert(*f, *v);
        }
        out
    }

    /// Iterate over `(field, raw value)` assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&Field, &u64)> {
        self.assignments.iter()
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return write!(f, "pass");
        }
        for (i, (field, v)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:={}", field, field.render(*v))?;
        }
        Ok(())
    }
}

/// A prioritized rule: if the match fires, emit one output packet per action
/// (no actions = drop).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The packets this rule captures.
    pub match_: Match,
    /// The transformations applied to captured packets (empty = drop).
    pub actions: Vec<Action>,
}

impl Rule {
    /// A rule that drops everything it matches.
    pub fn drop(match_: Match) -> Self {
        Rule {
            match_,
            actions: Vec::new(),
        }
    }

    /// A rule that passes matching packets through unchanged.
    pub fn pass(match_: Match) -> Self {
        Rule {
            match_,
            actions: vec![Action::identity()],
        }
    }

    /// Is this a drop rule?
    pub fn is_drop(&self) -> bool {
        self.actions.is_empty()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> ", self.match_)?;
        if self.is_drop() {
            return write!(f, "drop");
        }
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A prioritized rule list — the compiled form of a policy, isomorphic to an
/// OpenFlow flow table. Earlier rules win; the compiler keeps classifiers
/// *complete* (the last rule matches everything), so evaluation is total.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Classifier {
    rules: Vec<Rule>,
}

impl Classifier {
    /// Above this size, `optimize` skips the quadratic subsumption scan.
    pub const FULL_OPTIMIZE_LIMIT: usize = 4_096;

    /// Build from rules, appending a catch-all drop if the rule list is not
    /// visibly complete.
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut c = Classifier { rules };
        if !c.rules.last().map(|r| r.match_.is_any()).unwrap_or(false) {
            c.rules.push(Rule::drop(Match::any()));
        }
        c
    }

    /// The classifier that drops everything.
    pub fn drop_all() -> Self {
        Classifier::new(Vec::new())
    }

    /// The classifier that passes everything unchanged.
    pub fn pass_all() -> Self {
        Classifier::new(vec![Rule::pass(Match::any())])
    }

    /// The rules, highest priority first.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules (including the catch-all).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// A classifier is never truly empty (completeness invariant), but this
    /// mirrors the container convention.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The first rule matching the packet.
    pub fn first_match(&self, pkt: &Packet) -> Option<&Rule> {
        self.rules.iter().find(|r| r.match_.matches(pkt))
    }

    /// Evaluate the packet: apply the first matching rule's actions.
    pub fn evaluate(&self, pkt: &Packet) -> BTreeSet<Packet> {
        match self.first_match(pkt) {
            Some(rule) => rule.actions.iter().map(|a| a.apply(pkt)).collect(),
            None => BTreeSet::new(),
        }
    }

    /// Remove unreachable rules (shadowed by a single earlier rule) and
    /// collapse a trailing run of drop rules into the final catch-all,
    /// reporting every eliminated rule with its index and the reason.
    ///
    /// The full pairwise subsumption scan is quadratic, so above
    /// [`Self::FULL_OPTIMIZE_LIMIT`] rules only exact-duplicate matches are
    /// removed (linear), which catches the overwhelmingly common shadow case
    /// in compiled SDX tables.
    pub fn optimize(mut self) -> Optimized {
        let full = self.rules.len() <= Self::FULL_OPTIMIZE_LIMIT;
        let mut seen: std::collections::HashMap<Match, usize> = std::collections::HashMap::new();
        let mut kept: Vec<(usize, Rule)> = Vec::with_capacity(self.rules.len());
        let mut eliminated: Vec<Elision> = Vec::new();
        for (index, rule) in self.rules.drain(..).enumerate() {
            if let Some(&first) = seen.get(&rule.match_) {
                // Exact duplicate of an earlier match: unreachable.
                eliminated.push(Elision {
                    index,
                    rule,
                    reason: ElisionReason::Duplicate { first },
                });
                continue;
            }
            if full {
                if let Some(&(by, _)) = kept
                    .iter()
                    .find(|(_, earlier)| earlier.match_.subsumes(&rule.match_))
                {
                    // Unreachable: an earlier rule captures every packet it would.
                    eliminated.push(Elision {
                        index,
                        rule,
                        reason: ElisionReason::SubsumedBy { by },
                    });
                    continue;
                }
            }
            seen.insert(rule.match_.clone(), index);
            kept.push((index, rule));
        }
        // Drop rules immediately before a catch-all drop are redundant.
        if kept
            .last()
            .map(|(_, r)| r.match_.is_any() && r.is_drop())
            .unwrap_or(false)
        {
            let catch_all = kept.pop().expect("just checked");
            while kept.last().map(|(_, r)| r.is_drop()).unwrap_or(false) {
                let (index, rule) = kept.pop().expect("just checked");
                eliminated.push(Elision {
                    index,
                    rule,
                    reason: ElisionReason::TrailingDrop,
                });
            }
            kept.push(catch_all);
        }
        eliminated.sort_by_key(|e| e.index);
        Optimized {
            classifier: Classifier::new(kept.into_iter().map(|(_, r)| r).collect()),
            eliminated,
        }
    }

    /// Concatenate rule lists (callers must guarantee the semantics; used by
    /// the compiler where region-disjointness makes it sound).
    pub(crate) fn concat(parts: Vec<Vec<Rule>>) -> Classifier {
        Classifier::new(parts.into_iter().flatten().collect())
    }

    /// An order-sensitive FNV-1a fingerprint of the full rule list (matches,
    /// actions, and priorities via position). Two classifiers with the same
    /// fingerprint are byte-identical for all practical purposes — the
    /// parallel-compilation smoke tests compare these across thread counts.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for rule in &self.rules {
            for byte in rule.to_string().bytes().chain([b'\n']) {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        }
        hash
    }
}

/// Why [`Classifier::optimize`] removed a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElisionReason {
    /// Same match as the rule at original index `first`; first match wins.
    Duplicate {
        /// Original index of the identical earlier match.
        first: usize,
    },
    /// Every packet this rule matches is captured by the single earlier rule
    /// at original index `by`.
    SubsumedBy {
        /// Original index of the covering rule.
        by: usize,
    },
    /// A drop rule sitting directly above the catch-all drop: removing it
    /// leaves the same packets dropped by the catch-all.
    TrailingDrop,
}

/// One rule removed by [`Classifier::optimize`], with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elision {
    /// The rule's index in the pre-optimization rule list.
    pub index: usize,
    /// The removed rule itself.
    pub rule: Rule,
    /// Why it was safe to remove.
    pub reason: ElisionReason,
}

/// Result of [`Classifier::optimize`]: the pruned classifier plus an audit
/// trail of everything that was removed (nothing is dropped silently).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Optimized {
    /// The pruned, still-complete classifier.
    pub classifier: Classifier,
    /// Eliminated rules in ascending original-index order.
    pub eliminated: Vec<Elision>,
}

impl Optimized {
    /// Number of rules removed.
    pub fn count(&self) -> usize {
        self.eliminated.len()
    }

    /// Original indices of the removed rules, ascending.
    pub fn indices(&self) -> Vec<usize> {
        self.eliminated.iter().map(|e| e.index).collect()
    }
}

impl fmt::Display for Classifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            writeln!(f, "{:4}: {}", self.rules.len() - i, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;

    #[test]
    fn action_apply_and_compose() {
        let a = Action::set(Field::DstPort, 80u16);
        let b = Action::set(Field::DstPort, 443u16).with(Field::Port, 9u32);
        let pkt = Packet::new().with(Field::DstPort, 22u16);
        assert_eq!(a.apply(&pkt).get(Field::DstPort), Some(80));
        let ab = a.then(&b);
        let out = ab.apply(&pkt);
        assert_eq!(out.get(Field::DstPort), Some(443));
        assert_eq!(out.port(), Some(9));
        let ba = b.then(&a);
        assert_eq!(ba.apply(&pkt).get(Field::DstPort), Some(80));
    }

    #[test]
    fn identity_action() {
        let pkt = Packet::new().with(Field::DstPort, 22u16);
        assert_eq!(Action::identity().apply(&pkt), pkt);
        assert!(Action::identity().is_identity());
        assert!(!Action::set(Field::Port, 1u32).is_identity());
    }

    #[test]
    fn classifier_first_match_wins() {
        let c = Classifier::new(vec![
            Rule {
                match_: Match::on(Field::DstPort, Pattern::Exact(80)),
                actions: vec![Action::set(Field::Port, 1u32)],
            },
            Rule {
                match_: Match::any(),
                actions: vec![Action::set(Field::Port, 2u32)],
            },
        ]);
        let pkt80 = Packet::new().with(Field::DstPort, 80u16);
        let pkt22 = Packet::new().with(Field::DstPort, 22u16);
        assert_eq!(c.evaluate(&pkt80).iter().next().unwrap().port(), Some(1));
        assert_eq!(c.evaluate(&pkt22).iter().next().unwrap().port(), Some(2));
    }

    #[test]
    fn new_appends_catch_all() {
        let c = Classifier::new(vec![Rule::pass(Match::on(
            Field::DstPort,
            Pattern::Exact(80),
        ))]);
        assert_eq!(c.len(), 2);
        assert!(c.rules().last().unwrap().is_drop());
        assert!(c.rules().last().unwrap().match_.is_any());
    }

    #[test]
    fn drop_all_and_pass_all() {
        let pkt = Packet::new().with(Field::DstPort, 80u16);
        assert!(Classifier::drop_all().evaluate(&pkt).is_empty());
        assert_eq!(Classifier::pass_all().evaluate(&pkt).len(), 1);
    }

    #[test]
    fn optimize_removes_shadowed() {
        let c = Classifier::new(vec![
            Rule::pass(Match::any()),
            Rule::drop(Match::on(Field::DstPort, Pattern::Exact(80))), // unreachable
        ]);
        let o = c.optimize();
        assert_eq!(o.classifier.len(), 1);
        // Both the shadowed rule and the auto-appended catch-all (a duplicate
        // of the leading pass-any) are reported.
        assert_eq!(o.count(), 2);
        assert_eq!(o.indices(), vec![1, 2]);
        assert_eq!(o.eliminated[0].reason, ElisionReason::SubsumedBy { by: 0 });
        assert_eq!(
            o.eliminated[1].reason,
            ElisionReason::Duplicate { first: 0 }
        );
    }

    #[test]
    fn optimize_collapses_trailing_drops() {
        let c = Classifier::new(vec![
            Rule::pass(Match::on(Field::DstPort, Pattern::Exact(80))),
            Rule::drop(Match::on(Field::DstPort, Pattern::Exact(443))),
            Rule::drop(Match::on(Field::DstPort, Pattern::Exact(22))),
        ]);
        let o = c.optimize();
        // Only the pass rule and the catch-all drop remain.
        assert_eq!(o.classifier.len(), 2);
        assert_eq!(o.indices(), vec![1, 2]);
        assert!(o
            .eliminated
            .iter()
            .all(|e| e.reason == ElisionReason::TrailingDrop));
    }

    #[test]
    fn optimize_reports_duplicates() {
        let c = Classifier::new(vec![
            Rule::pass(Match::on(Field::DstPort, Pattern::Exact(80))),
            Rule::drop(Match::on(Field::DstPort, Pattern::Exact(80))), // duplicate match
            Rule {
                match_: Match::any(),
                actions: vec![Action::set(Field::Port, 5u32)],
            },
        ]);
        let o = c.optimize();
        assert_eq!(o.count(), 1);
        assert_eq!(o.eliminated[0].index, 1);
        assert!(matches!(
            o.eliminated[0].reason,
            ElisionReason::Duplicate { first: 0 }
        ));
    }

    #[test]
    fn optimize_preserves_semantics_on_samples() {
        let c = Classifier::new(vec![
            Rule::pass(Match::on(Field::DstPort, Pattern::Exact(80))),
            Rule::drop(Match::on(Field::DstPort, Pattern::Exact(80))), // shadowed
            Rule {
                match_: Match::any(),
                actions: vec![Action::set(Field::Port, 5u32)],
            },
        ]);
        let o = c.clone().optimize().classifier;
        for port in [80u16, 443, 22] {
            let pkt = Packet::new().with(Field::DstPort, port);
            assert_eq!(c.evaluate(&pkt), o.evaluate(&pkt), "port {port}");
        }
    }

    #[test]
    fn multicast_rule_emits_all_copies() {
        let c = Classifier::new(vec![Rule {
            match_: Match::any(),
            actions: vec![
                Action::set(Field::Port, 1u32),
                Action::set(Field::Port, 2u32),
            ],
        }]);
        let out = c.evaluate(&Packet::new());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let c = Classifier::new(vec![Rule::pass(Match::on(
            Field::DstPort,
            Pattern::Exact(80),
        ))]);
        let s = c.to_string();
        assert!(s.contains("dstport=80 -> pass"), "{s}");
        assert!(s.contains("* -> drop"), "{s}");
    }
}
