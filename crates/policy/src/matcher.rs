use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Field, Packet, Pattern};

/// The shape of a single-field constraint: whether the pattern is an exact
/// value or an IP prefix. Part of a [`MatchSignature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SigKind {
    /// `Pattern::Exact` — the field is pinned to one value.
    Exact,
    /// `Pattern::Prefix` — the field (an IPv4 address) is constrained to a
    /// CIDR range shorter than /32.
    Prefix,
}

/// The *signature* of a match: which fields it constrains and whether each
/// constraint is exact or a prefix, with the concrete values erased.
///
/// Two matches with the same signature can share one lookup structure — a
/// hash table over the exact fields' values plus a prefix trie per prefix
/// field — which is the tuple-space classification the data plane's flow
/// tables build on (one "tuple" per signature, as in Open vSwitch's
/// megaflow classifier).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchSignature {
    /// `(field, kind)` pairs, sorted by field (the `Match` map order).
    fields: Vec<(Field, SigKind)>,
}

impl MatchSignature {
    /// The signature constraining no fields (the wildcard match's).
    pub fn wildcard() -> Self {
        MatchSignature::default()
    }

    /// Is this the wildcard signature?
    pub fn is_wildcard(&self) -> bool {
        self.fields.is_empty()
    }

    /// Number of constrained fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The `(field, kind)` pairs, sorted by field.
    pub fn fields(&self) -> &[(Field, SigKind)] {
        &self.fields
    }

    /// The fields constrained to exact values, in field order.
    pub fn exact_fields(&self) -> impl Iterator<Item = Field> + '_ {
        self.fields
            .iter()
            .filter(|(_, k)| *k == SigKind::Exact)
            .map(|(f, _)| *f)
    }

    /// The fields constrained by prefixes, in field order.
    pub fn prefix_fields(&self) -> impl Iterator<Item = Field> + '_ {
        self.fields
            .iter()
            .filter(|(_, k)| *k == SigKind::Prefix)
            .map(|(f, _)| *f)
    }
}

impl fmt::Display for MatchSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard() {
            return write!(f, "*");
        }
        for (i, (field, kind)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match kind {
                SigKind::Exact => write!(f, "{field}")?,
                SigKind::Prefix => write!(f, "{field}/")?,
            }
        }
        Ok(())
    }
}

/// A conjunction of per-field patterns: the match half of a classifier rule.
///
/// A field absent from the map is a wildcard. The empty match (`Match::any()`)
/// matches every packet.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Match {
    fields: BTreeMap<Field, Pattern>,
}

impl Match {
    /// The wildcard match.
    pub fn any() -> Self {
        Match::default()
    }

    /// A match on a single field.
    pub fn on(field: Field, pattern: Pattern) -> Self {
        let mut m = Match::default();
        m.fields.insert(field, pattern.canonical());
        m
    }

    /// Add (conjoin) a constraint, returning `None` if it contradicts an
    /// existing constraint on the same field.
    pub fn and(mut self, field: Field, pattern: Pattern) -> Option<Self> {
        let pattern = pattern.canonical();
        match self.fields.get(&field) {
            Some(existing) => {
                let both = existing.intersect(&pattern)?;
                self.fields.insert(field, both);
            }
            None => {
                self.fields.insert(field, pattern);
            }
        }
        Some(self)
    }

    /// The constraint on a field, if any.
    pub fn get(&self, field: Field) -> Option<&Pattern> {
        self.fields.get(&field)
    }

    /// Remove the constraint on a field (used when an action overwrites it).
    pub fn without(mut self, field: Field) -> Self {
        self.fields.remove(&field);
        self
    }

    /// Number of constrained fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Is this the wildcard match?
    pub fn is_any(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate over `(field, pattern)` constraints.
    pub fn iter(&self) -> impl Iterator<Item = (&Field, &Pattern)> {
        self.fields.iter()
    }

    /// Does the packet satisfy every constraint? A constraint on a field the
    /// packet does not carry fails (matching a missing header is false).
    pub fn matches(&self, pkt: &Packet) -> bool {
        self.fields
            .iter()
            .all(|(f, pat)| pkt.get(*f).map(|v| pat.matches(v)).unwrap_or(false))
    }

    /// The conjunction of two matches, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Match) -> Option<Match> {
        // Iterate over the smaller side for a minor win on skewed inputs.
        let (small, large) = if self.fields.len() <= other.fields.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = large.clone();
        for (f, pat) in small.fields.iter() {
            out = out.and(*f, *pat)?;
        }
        Some(out)
    }

    /// Are the two matches disjoint (no packet satisfies both)?
    pub fn disjoint(&self, other: &Match) -> bool {
        self.intersect(other).is_none()
    }

    /// The signature of this match: which fields it constrains and the
    /// shape (exact vs prefix) of each constraint. Patterns are stored
    /// canonicalized, so a /32 prefix reports as `SigKind::Exact`.
    pub fn signature(&self) -> MatchSignature {
        MatchSignature {
            fields: self
                .fields
                .iter()
                .map(|(f, p)| {
                    let kind = match p {
                        Pattern::Exact(_) => SigKind::Exact,
                        Pattern::Prefix(_) => SigKind::Prefix,
                    };
                    (*f, kind)
                })
                .collect(),
        }
    }

    /// Does every packet matching `other` also match `self`?
    pub fn subsumes(&self, other: &Match) -> bool {
        self.fields.iter().all(|(f, p1)| match other.fields.get(f) {
            Some(p2) => p1.subsumes(p2),
            None => false,
        })
    }
}

impl FromIterator<(Field, Pattern)> for Match {
    fn from_iter<T: IntoIterator<Item = (Field, Pattern)>>(iter: T) -> Self {
        let mut m = Match::any();
        for (f, p) in iter {
            // Contradictory iterators collapse the constraint to the last
            // intersection; callers building from known-consistent data only.
            m = m
                .and(f, p)
                .expect("contradictory constraints in Match::from_iter");
        }
        m
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, "*");
        }
        for (i, (field, pat)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", field, pat.render(*field))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> u64 {
        u32::from(s.parse::<std::net::Ipv4Addr>().unwrap()) as u64
    }

    fn pfx(s: &str) -> Pattern {
        Pattern::Prefix(s.parse().unwrap())
    }

    #[test]
    fn wildcard_matches_everything() {
        let pkt = Packet::new().with(Field::DstPort, 80u16);
        assert!(Match::any().matches(&pkt));
    }

    #[test]
    fn conjunction_and_contradiction() {
        let m = Match::on(Field::DstPort, Pattern::Exact(80));
        assert!(m.clone().and(Field::DstPort, Pattern::Exact(80)).is_some());
        assert!(m.clone().and(Field::DstPort, Pattern::Exact(443)).is_none());
        let m2 = m.and(Field::SrcIp, pfx("10.0.0.0/8")).unwrap();
        assert_eq!(m2.arity(), 2);
    }

    #[test]
    fn match_requires_field_presence() {
        let m = Match::on(Field::DstPort, Pattern::Exact(80));
        let no_ports = Packet::new().with(Field::DstIp, 5u32);
        assert!(!m.matches(&no_ports));
    }

    #[test]
    fn intersect_narrows_prefixes() {
        let a = Match::on(Field::DstIp, pfx("10.0.0.0/8"));
        let b = Match::on(Field::DstIp, pfx("10.1.0.0/16"));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.get(Field::DstIp), Some(&pfx("10.1.0.0/16")));
        let c = Match::on(Field::DstIp, pfx("11.0.0.0/8"));
        assert!(a.disjoint(&c));
    }

    #[test]
    fn intersect_merges_distinct_fields() {
        let a = Match::on(Field::DstPort, Pattern::Exact(80));
        let b = Match::on(Field::SrcIp, pfx("0.0.0.0/1"));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.arity(), 2);
        let pkt = Packet::new()
            .with(Field::DstPort, 80u16)
            .with(Field::SrcIp, std::net::Ipv4Addr::new(10, 0, 0, 1));
        assert!(i.matches(&pkt));
    }

    #[test]
    fn subsumption_rules() {
        let coarse = Match::on(Field::DstIp, pfx("10.0.0.0/8"));
        let fine = coarse
            .clone()
            .and(Field::DstPort, Pattern::Exact(80))
            .unwrap();
        assert!(coarse.subsumes(&fine));
        assert!(!fine.subsumes(&coarse));
        assert!(Match::any().subsumes(&coarse));
        assert!(!coarse.subsumes(&Match::any()));
        assert!(Match::any().subsumes(&Match::any()));
    }

    #[test]
    fn exact_ip_and_prefix_interplay() {
        let exact = Match::on(Field::DstIp, Pattern::Exact(ip("10.0.0.1")));
        let prefix = Match::on(Field::DstIp, pfx("10.0.0.0/8"));
        assert_eq!(exact.intersect(&prefix), Some(exact.clone()));
        assert!(prefix.subsumes(&exact));
    }

    #[test]
    fn without_removes_constraint() {
        let m = Match::on(Field::Port, Pattern::Exact(3));
        assert!(m.without(Field::Port).is_any());
    }

    #[test]
    fn signature_reflects_shape_and_canonicalization() {
        let m = Match::on(Field::DstIp, pfx("10.0.0.0/8"))
            .and(Field::DstPort, Pattern::Exact(80))
            .unwrap();
        let sig = m.signature();
        assert_eq!(sig.arity(), 2);
        assert_eq!(sig.prefix_fields().collect::<Vec<_>>(), vec![Field::DstIp]);
        assert_eq!(sig.exact_fields().collect::<Vec<_>>(), vec![Field::DstPort]);
        assert_eq!(sig.to_string(), "dstip/,dstport");

        // A /32 prefix canonicalizes to Exact, so its signature says Exact:
        // the two spellings share a bucket.
        let host = Match::on(Field::DstIp, pfx("10.0.0.1/32"));
        assert_eq!(
            host.signature(),
            Match::on(Field::DstIp, Pattern::Exact(ip("10.0.0.1"))).signature()
        );

        assert!(Match::any().signature().is_wildcard());
        assert_eq!(Match::any().signature(), MatchSignature::wildcard());
    }

    #[test]
    fn display_renders_field_kinds() {
        let m = Match::on(Field::DstIp, pfx("10.0.0.0/8"))
            .and(Field::DstPort, Pattern::Exact(80))
            .unwrap();
        let s = m.to_string();
        assert!(s.contains("dstip=10.0.0.0/8"), "{s}");
        assert!(s.contains("dstport=80"), "{s}");
        assert_eq!(Match::any().to_string(), "*");
    }
}
