//! Multi-rule cover (shadow/reachability) analysis.
//!
//! [`Classifier::optimize`] removes a rule only when a *single* earlier rule
//! subsumes it. A rule can also be dead because the **union** of earlier
//! rules covers its match — e.g. `dstip in 0.0.0.0/1 -> fwd` plus
//! `dstip in 128.0.0.0/1 -> drop` together shadow any later `dstip` rule —
//! which pairwise subsumption cannot see. This module decides reachability
//! exactly by subtracting earlier matches from a rule's region and checking
//! emptiness per field.
//!
//! A [`Region`] is a positive [`Match`] (a cube: one pattern per constrained
//! field) plus tracked negative constraints. Subtracting a match `m` with
//! constraints `A1 ∧ … ∧ Ak` uses the difference expansion
//! `R \ m = ⋃ⱼ R ∧ A1 ∧ … ∧ Aⱼ₋₁ ∧ ¬Aⱼ`, so every produced region again has
//! a cube positive part and per-field negative sets. Because all constraints
//! are per-field conjunctions, emptiness factors: a region is empty iff some
//! field's positive interval is fully covered by its excluded intervals
//! (patterns are intervals: an exact value is a point, a CIDR prefix an
//! aligned range). Field-absence semantics match [`Match::matches`]: a
//! constraint on a missing header is false, so a *negative* constraint on a
//! field the positive part does not pin is always satisfiable — by omitting
//! the field.

use std::collections::BTreeMap;

use crate::{Classifier, Field, Match, Packet, Pattern};

/// Above this many rules the cover analysis declines to run (returns no
/// findings) instead of burning quadratic time on huge fabric tables.
pub const COVER_RULE_LIMIT: usize = 2_000;

/// Per-rule cap on tracked regions; past it the rule is conservatively
/// treated as reachable (no false shadow reports on blowup).
pub const COVER_REGION_LIMIT: usize = 512;

/// Inclusive maximum raw value a field can hold.
fn domain_max(field: Field) -> u64 {
    match field {
        Field::Port => u32::MAX as u64,
        Field::SrcMac | Field::DstMac => (1u64 << 48) - 1,
        Field::EthType => u16::MAX as u64,
        Field::SrcIp | Field::DstIp => u32::MAX as u64,
        Field::IpProto => u8::MAX as u64,
        Field::SrcPort | Field::DstPort => u16::MAX as u64,
    }
}

/// The inclusive value interval a pattern denotes (prefixes are aligned
/// ranges, exact values are points).
fn pattern_interval(p: &Pattern) -> (u64, u64) {
    match p {
        Pattern::Exact(v) => (*v, *v),
        Pattern::Prefix(pfx) => (
            u32::from(pfx.first_addr()) as u64,
            u32::from(pfx.last_addr()) as u64,
        ),
    }
}

/// Smallest value in `pos`'s interval not excluded by any of `excluded`,
/// or `None` if the exclusions cover the whole interval.
fn field_witness(field: Field, pos: &Pattern, excluded: &[Pattern]) -> Option<u64> {
    let (lo, hi) = pattern_interval(pos);
    let hi = hi.min(domain_max(field));
    let mut holes: Vec<(u64, u64)> = excluded
        .iter()
        .map(pattern_interval)
        .filter(|&(a, b)| b >= lo && a <= hi)
        .collect();
    holes.sort_unstable();
    let mut cursor = lo;
    for (a, b) in holes {
        if a > cursor {
            break; // gap before this hole
        }
        cursor = cursor.max(b.checked_add(1)?);
        if cursor > hi {
            return None;
        }
    }
    (cursor <= hi).then_some(cursor)
}

/// A set of packets: a positive cube and per-field negative pattern sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// The positive constraints (all must hold; absent fields are wild).
    pub pos: Match,
    neg: BTreeMap<Field, Vec<Pattern>>,
}

impl Region {
    /// The region of exactly the packets matching `m`.
    pub fn from_match(m: Match) -> Self {
        Region {
            pos: m,
            neg: BTreeMap::new(),
        }
    }

    /// A packet inside the region, or `None` iff the region is empty.
    ///
    /// Constrained fields get the smallest admissible value; fields with
    /// only negative constraints are omitted (a missing header falsifies
    /// the subtracted match, exactly as in [`Match::matches`]).
    pub fn witness(&self) -> Option<Packet> {
        let mut pkt = Packet::new();
        for (f, p) in self.pos.iter() {
            let excluded = self.neg.get(f).map(Vec::as_slice).unwrap_or(&[]);
            let v = field_witness(*f, p, excluded)?;
            pkt.set(*f, v);
        }
        Some(pkt)
    }

    /// Is the region empty?
    pub fn is_empty(&self) -> bool {
        self.witness().is_none()
    }

    /// Does the region contain the packet? Mirrors [`Match::matches`]
    /// semantics: every positive constraint must hold, and every subtracted
    /// (negative) constraint must *fail* — which a missing header does.
    pub fn contains(&self, pkt: &Packet) -> bool {
        self.pos.matches(pkt)
            && self.neg.iter().all(|(f, ps)| {
                ps.iter()
                    .all(|p| !pkt.get(*f).map(|v| p.matches(v)).unwrap_or(false))
            })
    }

    /// The region of packets in `self` that also match `m`, or `None` when
    /// the intersection is empty. The negative constraints carry over
    /// unchanged (they only ever shrink the result further).
    pub fn intersect_match(&self, m: &Match) -> Option<Region> {
        let pos = self.pos.intersect(m)?;
        let r = Region {
            pos,
            neg: self.neg.clone(),
        };
        (!r.is_empty()).then_some(r)
    }

    /// The intersection of two regions (positive cubes conjoined, negative
    /// sets merged), or `None` when it is empty.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        let pos = self.pos.intersect(&other.pos)?;
        let mut neg = self.neg.clone();
        for (f, ps) in &other.neg {
            neg.entry(*f).or_default().extend(ps.iter().copied());
        }
        let r = Region { pos, neg };
        (!r.is_empty()).then_some(r)
    }

    /// The region with every constraint on `field` removed — the projection
    /// used when a later pipeline stage is known to overwrite the field, so
    /// its incoming value must not influence equivalence comparisons.
    pub fn without_field(&self, field: Field) -> Region {
        let mut r = self.clone();
        r.pos = r.pos.without(field);
        r.neg.remove(&field);
        r
    }

    /// The positive constraint on a field, if any.
    pub fn pos_pattern(&self, field: Field) -> Option<&Pattern> {
        self.pos.get(field)
    }

    /// `self` minus the packets matching `m`, as a disjunction of regions
    /// (possibly empty). Exact.
    pub fn subtract(&self, m: &Match) -> Vec<Region> {
        if self.pos.intersect(m).is_none() {
            return vec![self.clone()];
        }
        if m.is_any() {
            return Vec::new(); // the wildcard swallows everything.
        }
        let mut terms = Vec::new();
        let mut narrowed = self.pos.clone();
        for (f, p) in m.iter() {
            // Term j: earlier constraints of `m` hold positively, this one
            // is violated (header absent or value outside the pattern).
            let mut term = Region {
                pos: narrowed.clone(),
                neg: self.neg.clone(),
            };
            term.neg.entry(*f).or_default().push(*p);
            if !term.is_empty() {
                terms.push(term);
            }
            match narrowed.clone().and(*f, *p) {
                Some(n) => narrowed = n,
                None => break, // remaining terms would carry an empty cube.
            }
        }
        terms
    }
}

/// A rule no packet can reach: the union of the listed earlier rules covers
/// its entire match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowedRule {
    /// Index of the dead rule in the classifier.
    pub index: usize,
    /// Indices of earlier rules whose matches overlap the dead rule's match
    /// (the covering set).
    pub shadowed_by: Vec<usize>,
}

/// A packet matching `m` but none of `earlier`, or `None` when `earlier`
/// covers all of `m`. Conservative on blowup: past [`COVER_REGION_LIMIT`]
/// tracked regions the search gives up and returns `None`.
pub fn witness_outside(m: &Match, earlier: &[Match]) -> Option<Packet> {
    let mut regions = vec![Region::from_match(m.clone())];
    for e in earlier {
        let mut next = Vec::new();
        for r in &regions {
            next.extend(r.subtract(e));
        }
        regions = next;
        if regions.is_empty() || regions.len() > COVER_REGION_LIMIT {
            return None;
        }
    }
    regions.first().and_then(Region::witness)
}

/// Every rule of the classifier shadowed by the *union* of earlier rules,
/// with its covering set. The final completeness catch-all is not reported
/// (it is padding by construction); classifiers past [`COVER_RULE_LIMIT`]
/// rules return no findings rather than run quadratic analysis.
pub fn shadowed_rules(c: &Classifier) -> Vec<ShadowedRule> {
    let rules = c.rules();
    if rules.len() > COVER_RULE_LIMIT {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 1..rules.len() {
        if i == rules.len() - 1 && rules[i].match_.is_any() {
            continue; // completeness padding, not policy.
        }
        let mut regions = vec![Region::from_match(rules[i].match_.clone())];
        let mut shadowed_by = Vec::new();
        let mut blown = false;
        for (j, earlier) in rules.iter().enumerate().take(i) {
            let mut next = Vec::new();
            let mut touched = false;
            for r in &regions {
                if r.pos.intersect(&earlier.match_).is_none() {
                    next.push(r.clone());
                } else {
                    touched = true;
                    next.extend(r.subtract(&earlier.match_));
                }
            }
            if touched {
                shadowed_by.push(j);
            }
            regions = next;
            if regions.is_empty() {
                break;
            }
            if regions.len() > COVER_REGION_LIMIT {
                blown = true;
                break;
            }
        }
        if !blown && regions.is_empty() {
            out.push(ShadowedRule {
                index: i,
                shadowed_by,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, Rule};

    fn pfx(s: &str) -> Pattern {
        Pattern::Prefix(s.parse().unwrap())
    }

    fn on(f: Field, p: Pattern) -> Match {
        Match::on(f, p)
    }

    #[test]
    fn witness_of_plain_match() {
        let m = on(Field::DstPort, Pattern::Exact(80));
        let w = Region::from_match(m.clone()).witness().unwrap();
        assert!(m.matches(&w));
    }

    #[test]
    fn witness_avoids_exclusions() {
        let m = on(Field::DstIp, pfx("10.0.0.0/8"));
        let w = witness_outside(&m, &[on(Field::DstIp, pfx("10.0.0.0/9"))]).unwrap();
        assert!(m.matches(&w));
        assert!(!on(Field::DstIp, pfx("10.0.0.0/9")).matches(&w));
    }

    #[test]
    fn halves_cover_the_whole() {
        let m = on(Field::DstIp, pfx("10.0.0.0/8"));
        let halves = [
            on(Field::DstIp, pfx("10.0.0.0/9")),
            on(Field::DstIp, pfx("10.128.0.0/9")),
        ];
        assert!(witness_outside(&m, &halves).is_none());
    }

    #[test]
    fn absence_defeats_foreign_field_subtraction() {
        // Subtracting a dstport constraint from an ip-only region leaves the
        // packets without a dstport header, so the region stays nonempty.
        let m = on(Field::DstIp, pfx("10.0.0.0/8"));
        let w = witness_outside(&m, &[on(Field::DstPort, Pattern::Exact(80))]).unwrap();
        assert!(m.matches(&w));
        assert_eq!(w.get(Field::DstPort), None);
    }

    #[test]
    fn multi_rule_cover_is_detected() {
        // Neither half subsumes the /8 rule alone; together they shadow it.
        let c = Classifier::new(vec![
            Rule::pass(on(Field::DstIp, pfx("10.0.0.0/9"))),
            Rule::drop(on(Field::DstIp, pfx("10.128.0.0/9"))),
            Rule {
                match_: on(Field::DstIp, pfx("10.0.0.0/8")),
                actions: vec![Action::set(Field::Port, 7u32)],
            },
        ]);
        let dead = shadowed_rules(&c);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].index, 2);
        assert_eq!(dead[0].shadowed_by, vec![0, 1]);
    }

    #[test]
    fn exact_value_union_cover() {
        let c = Classifier::new(vec![
            Rule::pass(
                on(Field::IpProto, Pattern::Exact(6))
                    .and(Field::DstPort, Pattern::Exact(80))
                    .unwrap(),
            ),
            Rule::pass(on(Field::IpProto, Pattern::Exact(6))),
            // TCP port-80 traffic is covered by rule 0 ∪ rule 1 (rule 1
            // alone already subsumes it, but the analysis must agree).
            Rule::drop(
                on(Field::IpProto, Pattern::Exact(6))
                    .and(Field::DstPort, Pattern::Exact(80))
                    .unwrap(),
            ),
        ]);
        let dead = shadowed_rules(&c);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].index, 2);
    }

    #[test]
    fn live_rules_are_not_reported() {
        let c = Classifier::new(vec![
            Rule::pass(on(Field::DstPort, Pattern::Exact(80))),
            Rule::pass(on(Field::DstPort, Pattern::Exact(443))),
        ]);
        assert!(shadowed_rules(&c).is_empty());
    }

    #[test]
    fn intersect_match_narrows_and_keeps_negatives() {
        let base = Region::from_match(on(Field::DstIp, pfx("10.0.0.0/8")));
        let regions = base.subtract(&on(Field::DstIp, pfx("10.0.0.0/9")));
        assert_eq!(regions.len(), 1);
        // Narrowing to the subtracted half is empty; the other half is not.
        assert!(regions[0]
            .intersect_match(&on(Field::DstIp, pfx("10.0.0.0/9")))
            .is_none());
        let upper = regions[0]
            .intersect_match(&on(Field::DstIp, pfx("10.128.0.0/9")))
            .unwrap();
        let w = upper.witness().unwrap();
        assert!(on(Field::DstIp, pfx("10.128.0.0/9")).matches(&w));
    }

    #[test]
    fn region_intersection_merges_negatives() {
        let a = Region::from_match(on(Field::DstIp, pfx("10.0.0.0/8")))
            .subtract(&on(Field::DstIp, pfx("10.0.0.0/9")))
            .remove(0);
        let b = Region::from_match(on(Field::DstIp, pfx("10.128.0.0/9")))
            .subtract(&on(Field::DstIp, pfx("10.128.0.0/10")))
            .remove(0);
        let i = a.intersect(&b).unwrap();
        let w = i.witness().unwrap();
        assert!(on(Field::DstIp, pfx("10.192.0.0/10")).matches(&w));
        // A cube inside a's excluded half intersects to nothing.
        let c = Region::from_match(on(Field::DstIp, pfx("10.0.0.0/10")));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn contains_respects_negative_constraints() {
        let r = Region::from_match(on(Field::DstIp, pfx("10.0.0.0/8")))
            .subtract(&on(Field::DstIp, pfx("10.0.0.0/9")))
            .remove(0);
        let inside = Packet::new().with(Field::DstIp, ipv4("10.200.0.1"));
        let excluded = Packet::new().with(Field::DstIp, ipv4("10.1.0.1"));
        let outside = Packet::new().with(Field::DstIp, ipv4("11.0.0.1"));
        assert!(r.contains(&inside));
        assert!(!r.contains(&excluded));
        assert!(!r.contains(&outside));
    }

    #[test]
    fn without_field_projects_constraints_away() {
        let r = Region::from_match(
            on(Field::DstIp, pfx("10.0.0.0/8"))
                .and(Field::DstMac, Pattern::Exact(0xAA))
                .unwrap(),
        )
        .subtract(&on(Field::DstMac, Pattern::Exact(0xAA)))
        .first()
        .cloned();
        // Subtracting the pinned MAC empties the region entirely…
        assert!(r.is_none());
        let r = Region::from_match(
            on(Field::DstIp, pfx("10.0.0.0/8"))
                .and(Field::DstMac, Pattern::Exact(0xAA))
                .unwrap(),
        );
        let p = r.without_field(Field::DstMac);
        let other_mac = Packet::new()
            .with(Field::DstIp, ipv4("10.0.0.1"))
            .with(Field::DstMac, 0xBBu64);
        assert!(!r.contains(&other_mac));
        assert!(p.contains(&other_mac));
    }

    fn ipv4(s: &str) -> u64 {
        u32::from(s.parse::<std::net::Ipv4Addr>().unwrap()) as u64
    }

    #[test]
    fn port_range_cover_via_exacts() {
        // ipproto has a 256-value domain; excluding both TCP and UDP from a
        // region positively pinned to {6} empties it.
        let m = on(Field::IpProto, Pattern::Exact(6));
        assert!(witness_outside(&m, std::slice::from_ref(&m)).is_none());
        let w = witness_outside(&m, &[on(Field::IpProto, Pattern::Exact(17))]).unwrap();
        assert_eq!(w.get(Field::IpProto), Some(6));
    }
}
