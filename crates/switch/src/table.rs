use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use sdx_policy::{Action, Classifier, Match, Packet, Rule};
use serde::{Deserialize, Serialize};

use crate::index::{IndexStats, TableIndex};

/// Why a rule installation was refused. Installation paths that stack rule
/// bands above existing contents can run the 32-bit priority space dry; that
/// is an operational condition (recoverable by a background recompilation),
/// not a programming error, so it surfaces as a typed error instead of a
/// panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallError {
    /// Appending `rules` rules above priority ceiling `ceiling` would
    /// overflow the 32-bit priority space.
    PriorityExhausted {
        /// The table's priority ceiling before the append.
        ceiling: u32,
        /// How many rules the append needed above it.
        rules: u32,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::PriorityExhausted { ceiling, rules } => write!(
                f,
                "flow-table priority space exhausted: cannot stack {rules} \
                 rule(s) above priority {ceiling}"
            ),
        }
    }
}

impl std::error::Error for InstallError {}

/// A single flow-table entry: an OpenFlow-style (priority, match, actions)
/// triple.
///
/// The match/action model is shared with the policy compiler ([`Match`] /
/// [`Action`]), reflecting the paper's observation that compiled SDX policies
/// "have a straightforward mapping to low-level rules on OpenFlow switches".
/// Packet counters live on the owning [`FlowTable`] (see
/// [`FlowTable::packet_count`]), keyed by rule position, so the read-only
/// match path can bump them without exclusive access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// Higher wins.
    pub priority: u32,
    /// Cookie for bulk identification/removal (e.g. fast-path rules carry a
    /// generation cookie so the background optimizer can garbage-collect).
    pub cookie: u64,
    /// The match.
    pub match_: Match,
    /// The action list (empty = drop).
    pub actions: Vec<Action>,
    /// Continue matching in this pipeline table after applying the actions
    /// (OpenFlow `goto_table`). `None` = emit.
    pub goto_table: Option<usize>,
}

impl FlowRule {
    /// A rule with a zeroed cookie.
    pub fn new(priority: u32, match_: Match, actions: Vec<Action>) -> Self {
        FlowRule {
            priority,
            cookie: 0,
            match_,
            actions,
            goto_table: None,
        }
    }

    /// Builder: tag with a cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// Builder: continue in a later pipeline table (OpenFlow `goto_table`).
    pub fn with_goto(mut self, table: usize) -> Self {
        self.goto_table = Some(table);
        self
    }
}

impl fmt::Display for FlowRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio={} {} -> ", self.priority, self.match_)?;
        if self.actions.is_empty() {
            write!(f, "drop")?;
        } else {
            for (i, a) in self.actions.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{a}")?;
            }
        }
        if let Some(t) = self.goto_table {
            write!(f, " goto({t})")?;
        }
        Ok(())
    }
}

/// A priority-ordered flow table with an indexed fast path.
///
/// Rules are kept sorted by descending priority; among equal priorities,
/// insertion order decides (first installed wins), matching common switch
/// behavior closely enough for the SDX's generated rules, which never rely
/// on equal-priority overlap.
///
/// Lookups go through a tuple-space index (see [`crate::index`]): rules are
/// bucketed by match signature, exact fields are hash keys, prefix fields
/// walk a binary trie, and buckets are probed highest-priority-first with an
/// early exit. [`lookup_linear`](Self::lookup_linear) /
/// [`peek_linear`](Self::peek_linear) keep the O(n) scan as the oracle the
/// property tests and the dataplane bench baseline measure against. Both
/// paths share one read-only match pipeline; per-rule packet counters are
/// atomic so neither needs `&mut self`.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct FlowTable {
    /// Sorted by (priority descending, install sequence ascending) — a total
    /// order, since sequence numbers are unique.
    rules: Vec<FlowRule>,
    /// Install sequence of each rule, aligned with `rules`. Ascending within
    /// every priority band (the first-installed-wins tiebreak).
    seqs: Vec<u64>,
    /// Packets that hit each rule, aligned with `rules`.
    counters: Vec<AtomicU64>,
    next_seq: u64,
    index: TableIndex,
}

impl Clone for FlowTable {
    fn clone(&self) -> Self {
        FlowTable {
            rules: self.rules.clone(),
            seqs: self.seqs.clone(),
            counters: self
                .counters
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            next_seq: self.next_seq,
            index: self.index.clone(),
        }
    }
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, highest priority first.
    pub fn rules(&self) -> &[FlowRule] {
        &self.rules
    }

    /// Packets that hit `rules()[i]`. Panics if `i` is out of range.
    pub fn packet_count(&self, i: usize) -> u64 {
        self.counters[i].load(Ordering::Relaxed)
    }

    /// The highest installed priority, if any rule is installed.
    pub fn max_priority(&self) -> Option<u32> {
        self.rules.first().map(|r| r.priority)
    }

    /// Size counters of the lookup index.
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Install a rule (stable within its priority band).
    pub fn install(&mut self, rule: FlowRule) {
        let pos = self.rules.partition_point(|r| r.priority >= rule.priority);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.index.insert(&rule.match_, rule.priority, seq);
        self.rules.insert(pos, rule);
        self.seqs.insert(pos, seq);
        self.counters.insert(pos, AtomicU64::new(0));
    }

    /// Remove every rule carrying `cookie`; returns how many were removed.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let before = self.rules.len();
        if !self.rules.iter().any(|r| r.cookie == cookie) {
            return 0;
        }
        let mut rules = Vec::with_capacity(before);
        let mut seqs = Vec::with_capacity(before);
        let mut counters = Vec::with_capacity(before);
        for ((rule, seq), counter) in self
            .rules
            .drain(..)
            .zip(self.seqs.drain(..))
            .zip(self.counters.drain(..))
        {
            if rule.cookie != cookie {
                rules.push(rule);
                seqs.push(seq);
                counters.push(counter);
            }
        }
        self.rules = rules;
        self.seqs = seqs;
        self.counters = counters;
        self.rebuild_index();
        before - self.rules.len()
    }

    /// Remove all rules.
    pub fn clear(&mut self) {
        self.rules.clear();
        self.seqs.clear();
        self.counters.clear();
        self.index.clear();
    }

    /// Rebuild the lookup index from the rule list. Insertions maintain the
    /// index incrementally; this is the bulk path used after removals (and
    /// by the dataplane bench to time index construction).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, rule) in self.rules.iter().enumerate() {
            self.index.insert(&rule.match_, rule.priority, self.seqs[i]);
        }
    }

    /// Replace the whole table with a compiled classifier. Rule `i` of the
    /// classifier gets priority `len - i`, preserving first-match-wins.
    pub fn install_classifier(&mut self, classifier: &Classifier, cookie: u64) {
        self.clear();
        self.append_classifier(classifier, cookie, 0);
    }

    /// Append a classifier's rules *above* the existing table contents
    /// (used by the fast path of §4.3.2, which pushes higher-priority rules
    /// for updated prefixes without recompiling the rest).
    pub fn append_classifier(&mut self, classifier: &Classifier, cookie: u64, priority_boost: u32) {
        self.append_classifier_goto(classifier, cookie, priority_boost, None);
    }

    /// Like [`append_classifier`](Self::append_classifier), additionally
    /// setting `goto_table` on every non-drop rule — how a policy stage is
    /// installed into a multi-table pipeline.
    ///
    /// The appended band occupies priorities `priority_boost + 1 ..=
    /// priority_boost + classifier.len()`. **Invariant:** `priority_boost`
    /// must be at least the table's current [`max_priority`]
    /// (self::max_priority), so repeated overlay appends stack strictly
    /// above everything already installed and can never collide or
    /// interleave with the base table's priorities. Callers that just want
    /// "on top of whatever is there" should use
    /// [`append_rules_above`](Self::append_rules_above), which computes the
    /// boost itself.
    pub fn append_classifier_goto(
        &mut self,
        classifier: &Classifier,
        cookie: u64,
        priority_boost: u32,
        goto: Option<usize>,
    ) {
        debug_assert!(
            self.max_priority()
                .map(|p| priority_boost >= p)
                .unwrap_or(true),
            "append band would interleave with existing priorities: \
             boost {priority_boost} < max installed {:?}",
            self.max_priority()
        );
        let n = classifier.len() as u32;
        priority_boost
            .checked_add(n)
            .expect("flow-table priority space exhausted");
        for (i, rule) in classifier.rules().iter().enumerate() {
            let mut fr = FlowRule::new(
                priority_boost + n - i as u32,
                rule.match_.clone(),
                rule.actions.clone(),
            )
            .with_cookie(cookie);
            if let (Some(t), false) = (goto, rule.is_drop()) {
                fr = fr.with_goto(t);
            }
            self.install(fr);
        }
    }

    /// Append bare rules strictly above everything installed, preserving
    /// their order (earlier = higher priority): the §4.3.2 fast-path overlay
    /// primitive. Computes the priority boost from the table's own
    /// [`max_priority`](Self::max_priority), so repeated appends are
    /// collision-free by construction. Non-drop rules get `goto` when given.
    /// Returns the boost used (the priority ceiling *before* the append), or
    /// [`InstallError::PriorityExhausted`] — without installing anything —
    /// when the band would overflow the priority space (a long-lived runtime
    /// stacking overlays can get here; a background recompilation resets the
    /// ceiling and recovers).
    pub fn append_rules_above(
        &mut self,
        rules: &[Rule],
        cookie: u64,
        goto: Option<usize>,
    ) -> Result<u32, InstallError> {
        let boost = self.max_priority().unwrap_or(0);
        let n = rules.len() as u32;
        if boost.checked_add(n).is_none() {
            return Err(InstallError::PriorityExhausted {
                ceiling: boost,
                rules: n,
            });
        }
        for (i, rule) in rules.iter().enumerate() {
            let mut fr = FlowRule::new(
                boost + n - i as u32,
                rule.match_.clone(),
                rule.actions.clone(),
            )
            .with_cookie(cookie);
            if let (Some(t), false) = (goto, rule.is_drop()) {
                fr = fr.with_goto(t);
            }
            self.install(fr);
        }
        Ok(boost)
    }

    /// Remove the first installed rule whose behavior-relevant fields equal
    /// `rule`'s — priority, match, actions, and `goto_table`, but *not* the
    /// cookie (an update plan retires rules by content, not by which
    /// generation installed them). Returns whether a rule was removed.
    pub fn remove_matching(&mut self, rule: &FlowRule) -> bool {
        let Some(pos) = self.rules.iter().position(|r| {
            r.priority == rule.priority
                && r.match_ == rule.match_
                && r.actions == rule.actions
                && r.goto_table == rule.goto_table
        }) else {
            return false;
        };
        self.rules.remove(pos);
        self.seqs.remove(pos);
        self.counters.remove(pos);
        self.rebuild_index();
        true
    }

    /// FNV-1a fingerprint of the table's behavior-relevant contents: every
    /// rule's priority, match, actions, and `goto_table`, in table order.
    /// Cookies, counters, and install sequence numbers are excluded, so two
    /// tables holding the same rules at the same priorities fingerprint
    /// equal no matter how they got there — the equality the update-plan
    /// round-trip property checks.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        for rule in &self.rules {
            let mut line = format!("prio={} {} ->", rule.priority, rule.match_);
            for a in &rule.actions {
                line.push_str(&format!(" {a}"));
            }
            if let Some(t) = rule.goto_table {
                line.push_str(&format!(" goto({t})"));
            }
            eat(line.as_bytes());
            eat(b"\n");
        }
        hash
    }

    /// Position of the rule identified by `(priority, seq)` — O(log n), the
    /// rule list being totally ordered by (priority desc, seq asc).
    fn position_of(&self, priority: u32, seq: u64) -> Option<usize> {
        let lo = self.rules.partition_point(|r| r.priority > priority);
        let hi = lo + self.rules[lo..].partition_point(|r| r.priority >= priority);
        let band = &self.seqs[lo..hi];
        let off = band.partition_point(|&s| s < seq);
        (off < band.len() && band[off] == seq).then_some(lo + off)
    }

    /// Indexed position of the best rule matching `pkt`.
    fn find(&self, pkt: &Packet) -> Option<usize> {
        let (priority, seq) = self.index.lookup(pkt)?;
        let pos = self
            .position_of(priority, seq)
            .expect("index candidates name installed rules");
        debug_assert!(self.rules[pos].match_.matches(pkt));
        Some(pos)
    }

    /// Look up the packet: the highest-priority matching rule. Bumps its
    /// packet counter.
    pub fn lookup(&self, pkt: &Packet) -> Option<&FlowRule> {
        let pos = self.find(pkt)?;
        self.counters[pos].fetch_add(1, Ordering::Relaxed);
        Some(&self.rules[pos])
    }

    /// Like `lookup` but without touching counters.
    pub fn peek(&self, pkt: &Packet) -> Option<&FlowRule> {
        self.find(pkt).map(|pos| &self.rules[pos])
    }

    /// Indexed position of the best rule matching `pkt`, without touching
    /// counters — the sharded data plane's lookup primitive: each shard
    /// counts hits in its *own* array (indexed by this position) instead of
    /// contending on the table's shared counters, and folds them back via
    /// [`add_hits`](Self::add_hits).
    pub fn peek_pos(&self, pkt: &Packet) -> Option<usize> {
        self.find(pkt)
    }

    /// The linear-scan oracle for [`peek_pos`](Self::peek_pos).
    pub fn peek_pos_linear(&self, pkt: &Packet) -> Option<usize> {
        self.rules.iter().position(|r| r.match_.matches(pkt))
    }

    /// The rule at position `pos` (as returned by
    /// [`peek_pos`](Self::peek_pos)). Panics if out of range.
    pub fn rule_at(&self, pos: usize) -> &FlowRule {
        &self.rules[pos]
    }

    /// Add `n` packet hits to the rule at `pos` — the aggregation half of
    /// the per-shard counting protocol. Atomic, so read-only lookups and
    /// counter folds need no exclusive access. Panics if out of range.
    pub fn add_hits(&self, pos: usize, n: u64) {
        self.counters[pos].fetch_add(n, Ordering::Relaxed);
    }

    /// The linear-scan oracle for [`lookup`](Self::lookup): same semantics,
    /// O(rules) per packet. Kept public so the property tests and the
    /// dataplane bench baseline can measure and diff against it.
    pub fn lookup_linear(&self, pkt: &Packet) -> Option<&FlowRule> {
        let pos = self.rules.iter().position(|r| r.match_.matches(pkt))?;
        self.counters[pos].fetch_add(1, Ordering::Relaxed);
        Some(&self.rules[pos])
    }

    /// The linear-scan oracle for [`peek`](Self::peek).
    pub fn peek_linear(&self, pkt: &Packet) -> Option<&FlowRule> {
        self.rules.iter().find(|r| r.match_.matches(pkt))
    }

    /// Total packets matched across all rules.
    pub fn total_hits(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            writeln!(f, "{r} (n={})", self.packet_count(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{Field, Pattern};

    fn m(port: u32) -> Match {
        Match::on(Field::Port, Pattern::Exact(port as u64))
    }

    #[test]
    fn priority_ordering() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, Match::any(), vec![]));
        t.install(FlowRule::new(
            10,
            m(1),
            vec![Action::set(Field::Port, 9u32)],
        ));
        t.install(FlowRule::new(5, m(1), vec![]));
        assert_eq!(t.rules()[0].priority, 10);
        assert_eq!(t.rules()[2].priority, 1);

        let pkt = Packet::new().with(Field::Port, 1u32);
        let hit = t.lookup(&pkt).unwrap();
        assert_eq!(hit.priority, 10);
    }

    #[test]
    fn equal_priority_first_installed_wins() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(5, m(1), vec![Action::set(Field::Port, 7u32)]));
        t.install(FlowRule::new(5, m(1), vec![Action::set(Field::Port, 8u32)]));
        let pkt = Packet::new().with(Field::Port, 1u32);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(7));
        assert_eq!(
            t.peek_linear(&pkt).unwrap().actions[0].get(Field::Port),
            Some(7)
        );
    }

    #[test]
    fn counters_track_hits() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, Match::any(), vec![]));
        let pkt = Packet::new();
        t.lookup(&pkt);
        t.lookup(&pkt);
        assert_eq!(t.packet_count(0), 2);
        t.lookup_linear(&pkt);
        assert_eq!(t.packet_count(0), 3);
        assert_eq!(t.total_hits(), 3);
    }

    #[test]
    fn cookie_removal() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, m(1), vec![]).with_cookie(7));
        t.install(FlowRule::new(2, m(2), vec![]).with_cookie(7));
        t.install(FlowRule::new(3, m(3), vec![]).with_cookie(9));
        assert_eq!(t.remove_by_cookie(7), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rules()[0].cookie, 9);
        // The index survives removal: the remaining rule is still found.
        let pkt = Packet::new().with(Field::Port, 3u32);
        assert_eq!(t.lookup(&pkt).unwrap().cookie, 9);
        assert!(t.lookup(&Packet::new().with(Field::Port, 1u32)).is_none());
    }

    #[test]
    fn classifier_install_preserves_order() {
        use sdx_policy::{fwd, match_};
        let policy =
            (match_(Field::DstPort, 80u16) >> fwd(1)) + (match_(Field::DstPort, 443u16) >> fwd(2));
        let classifier = policy.compile();
        let mut t = FlowTable::new();
        t.install_classifier(&classifier, 1);
        assert_eq!(t.len(), classifier.len());
        // Behavior matches the classifier on a sample.
        let pkt = Packet::new().with(Field::DstPort, 443u16);
        let rule = t.peek(&pkt).unwrap();
        assert_eq!(rule.actions[0].get(Field::Port), Some(2));
    }

    #[test]
    fn append_classifier_overrides_existing() {
        use sdx_policy::{fwd, match_};
        let mut t = FlowTable::new();
        t.install_classifier(&(match_(Field::DstPort, 80u16) >> fwd(1)).compile(), 1);
        let before = t.len() as u32;
        // Fast-path overlay sends port-80 to 2 instead.
        t.append_classifier(
            &(match_(Field::DstPort, 80u16) >> fwd(2)).compile(),
            2,
            before,
        );
        let pkt = Packet::new().with(Field::DstPort, 80u16);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(2));
        // Removing the overlay restores the original behavior.
        t.remove_by_cookie(2);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(1));
    }

    #[test]
    fn append_rules_above_stacks_collision_free() {
        use sdx_policy::{fwd, match_};
        let mut t = FlowTable::new();
        t.install_classifier(&(match_(Field::DstPort, 80u16) >> fwd(1)).compile(), 1);
        let base_max = t.max_priority().unwrap();
        // Two successive overlays: each must land strictly above everything
        // before it, later appends shadowing earlier ones.
        let overlay = |to: u32| {
            (match_(Field::DstPort, 80u16) >> fwd(to))
                .compile()
                .rules()
                .to_vec()
        };
        let boost1 = t.append_rules_above(&overlay(2), 2, None).unwrap();
        assert_eq!(boost1, base_max);
        let max1 = t.max_priority().unwrap();
        assert!(max1 > base_max);
        let boost2 = t.append_rules_above(&overlay(3), 3, Some(1)).unwrap();
        assert_eq!(boost2, max1);

        let pkt = Packet::new().with(Field::DstPort, 80u16);
        let hit = t.peek(&pkt).unwrap();
        assert_eq!(hit.actions[0].get(Field::Port), Some(3));
        assert_eq!(hit.goto_table, Some(1));
        // Unwinding the overlays restores each previous layer.
        t.remove_by_cookie(3);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(2));
        t.remove_by_cookie(2);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(1));
    }

    #[test]
    fn append_rules_above_surfaces_priority_exhaustion() {
        use sdx_policy::{fwd, match_};
        let mut t = FlowTable::new();
        // A rule already sitting at the priority ceiling: any further band
        // must be refused, and refused atomically (nothing installed).
        t.install(FlowRule::new(u32::MAX, m(1), vec![]));
        let overlay = (match_(Field::DstPort, 80u16) >> fwd(2))
            .compile()
            .rules()
            .to_vec();
        let err = t.append_rules_above(&overlay, 2, None).unwrap_err();
        assert!(matches!(
            err,
            InstallError::PriorityExhausted {
                ceiling: u32::MAX,
                ..
            }
        ));
        assert!(err.to_string().contains("priority space exhausted"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_matching_ignores_cookie() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(5, m(1), vec![]).with_cookie(7));
        t.install(FlowRule::new(3, m(2), vec![]).with_cookie(7));
        // Same content, different cookie: must still remove (once).
        let probe = FlowRule::new(5, m(1), vec![]).with_cookie(99);
        assert!(t.remove_matching(&probe));
        assert!(!t.remove_matching(&probe));
        assert_eq!(t.len(), 1);
        // The index survives: the remaining rule is still found.
        assert_eq!(
            t.lookup(&Packet::new().with(Field::Port, 2u32))
                .unwrap()
                .priority,
            3
        );
        assert!(t.lookup(&Packet::new().with(Field::Port, 1u32)).is_none());
    }

    #[test]
    fn fingerprint_tracks_content_not_provenance() {
        let mut a = FlowTable::new();
        a.install(FlowRule::new(5, m(1), vec![Action::set(Field::Port, 9u32)]).with_cookie(1));
        a.install(FlowRule::new(3, m(2), vec![]).with_cookie(1));
        // Same rules, different install order and cookies.
        let mut b = FlowTable::new();
        b.install(FlowRule::new(3, m(2), vec![]).with_cookie(42));
        b.install(FlowRule::new(5, m(1), vec![Action::set(Field::Port, 9u32)]).with_cookie(7));
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Content changes move the fingerprint.
        b.install(FlowRule::new(1, Match::any(), vec![]));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn indexed_lookup_handles_prefixes_and_wildcards() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(
            5,
            Match::on(Field::DstIp, Pattern::Prefix("10.0.0.0/8".parse().unwrap())),
            vec![Action::set(Field::Port, 1u32)],
        ));
        t.install(FlowRule::new(
            7,
            Match::on(
                Field::DstIp,
                Pattern::Prefix("10.1.0.0/16".parse().unwrap()),
            ),
            vec![Action::set(Field::Port, 2u32)],
        ));
        t.install(FlowRule::new(1, Match::any(), vec![]));

        let inner = Packet::new().with(Field::DstIp, std::net::Ipv4Addr::new(10, 1, 2, 3));
        let outer = Packet::new().with(Field::DstIp, std::net::Ipv4Addr::new(10, 9, 9, 9));
        let miss = Packet::new().with(Field::DstIp, std::net::Ipv4Addr::new(99, 0, 0, 1));
        assert_eq!(t.peek(&inner).unwrap().priority, 7);
        assert_eq!(t.peek(&outer).unwrap().priority, 5);
        assert_eq!(t.peek(&miss).unwrap().priority, 1);
        for pkt in [&inner, &outer, &miss] {
            assert_eq!(t.peek(pkt), t.peek_linear(pkt));
        }
        let stats = t.index_stats();
        assert_eq!(stats.rules, 3);
        assert_eq!(stats.buckets, 2); // {dstip-prefix}, {wildcard}
    }
}
