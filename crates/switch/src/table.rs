use std::fmt;

use sdx_policy::{Action, Classifier, Match, Packet};
use serde::{Deserialize, Serialize};

/// A single flow-table entry: an OpenFlow-style (priority, match, actions)
/// triple with byte/packet counters.
///
/// The match/action model is shared with the policy compiler ([`Match`] /
/// [`Action`]), reflecting the paper's observation that compiled SDX policies
/// "have a straightforward mapping to low-level rules on OpenFlow switches".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// Higher wins.
    pub priority: u32,
    /// Cookie for bulk identification/removal (e.g. fast-path rules carry a
    /// generation cookie so the background optimizer can garbage-collect).
    pub cookie: u64,
    /// The match.
    pub match_: Match,
    /// The action list (empty = drop).
    pub actions: Vec<Action>,
    /// Continue matching in this pipeline table after applying the actions
    /// (OpenFlow `goto_table`). `None` = emit.
    pub goto_table: Option<usize>,
    /// Packets that hit this rule.
    pub packet_count: u64,
}

impl FlowRule {
    /// A rule with zeroed counters and cookie.
    pub fn new(priority: u32, match_: Match, actions: Vec<Action>) -> Self {
        FlowRule {
            priority,
            cookie: 0,
            match_,
            actions,
            goto_table: None,
            packet_count: 0,
        }
    }

    /// Builder: tag with a cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// Builder: continue in a later pipeline table (OpenFlow `goto_table`).
    pub fn with_goto(mut self, table: usize) -> Self {
        self.goto_table = Some(table);
        self
    }
}

impl fmt::Display for FlowRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio={} {} -> ", self.priority, self.match_)?;
        if self.actions.is_empty() {
            write!(f, "drop")?;
        } else {
            for (i, a) in self.actions.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{a}")?;
            }
        }
        if let Some(t) = self.goto_table {
            write!(f, " goto({t})")?;
        }
        write!(f, " (n={})", self.packet_count)
    }
}

/// A priority-ordered flow table.
///
/// Rules are kept sorted by descending priority; among equal priorities,
/// insertion order decides (first installed wins), matching common switch
/// behavior closely enough for the SDX's generated rules, which never rely
/// on equal-priority overlap.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, highest priority first.
    pub fn rules(&self) -> &[FlowRule] {
        &self.rules
    }

    /// Install a rule (stable within its priority band).
    pub fn install(&mut self, rule: FlowRule) {
        let pos = self.rules.partition_point(|r| r.priority >= rule.priority);
        self.rules.insert(pos, rule);
    }

    /// Remove every rule carrying `cookie`; returns how many were removed.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.cookie != cookie);
        before - self.rules.len()
    }

    /// Remove all rules.
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// Replace the whole table with a compiled classifier. Rule `i` of the
    /// classifier gets priority `len - i`, preserving first-match-wins.
    pub fn install_classifier(&mut self, classifier: &Classifier, cookie: u64) {
        self.clear();
        self.append_classifier(classifier, cookie, 0);
    }

    /// Append a classifier's rules *above* the existing table contents
    /// (used by the fast path of §4.3.2, which pushes higher-priority rules
    /// for updated prefixes without recompiling the rest).
    pub fn append_classifier(&mut self, classifier: &Classifier, cookie: u64, priority_boost: u32) {
        self.append_classifier_goto(classifier, cookie, priority_boost, None);
    }

    /// Like [`append_classifier`](Self::append_classifier), additionally
    /// setting `goto_table` on every non-drop rule — how a policy stage is
    /// installed into a multi-table pipeline.
    pub fn append_classifier_goto(
        &mut self,
        classifier: &Classifier,
        cookie: u64,
        priority_boost: u32,
        goto: Option<usize>,
    ) {
        let n = classifier.len() as u32;
        for (i, rule) in classifier.rules().iter().enumerate() {
            let mut fr = FlowRule::new(
                priority_boost + n - i as u32,
                rule.match_.clone(),
                rule.actions.clone(),
            )
            .with_cookie(cookie);
            if let (Some(t), false) = (goto, rule.is_drop()) {
                fr = fr.with_goto(t);
            }
            self.install(fr);
        }
    }

    /// Look up the packet: the highest-priority matching rule. Bumps its
    /// packet counter.
    pub fn lookup(&mut self, pkt: &Packet) -> Option<&FlowRule> {
        let idx = self.rules.iter().position(|r| r.match_.matches(pkt))?;
        self.rules[idx].packet_count += 1;
        Some(&self.rules[idx])
    }

    /// Like `lookup` but without touching counters.
    pub fn peek(&self, pkt: &Packet) -> Option<&FlowRule> {
        self.rules.iter().find(|r| r.match_.matches(pkt))
    }

    /// Total packets matched across all rules.
    pub fn total_hits(&self) -> u64 {
        self.rules.iter().map(|r| r.packet_count).sum()
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{Field, Pattern};

    fn m(port: u32) -> Match {
        Match::on(Field::Port, Pattern::Exact(port as u64))
    }

    #[test]
    fn priority_ordering() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, Match::any(), vec![]));
        t.install(FlowRule::new(
            10,
            m(1),
            vec![Action::set(Field::Port, 9u32)],
        ));
        t.install(FlowRule::new(5, m(1), vec![]));
        assert_eq!(t.rules()[0].priority, 10);
        assert_eq!(t.rules()[2].priority, 1);

        let pkt = Packet::new().with(Field::Port, 1u32);
        let hit = t.lookup(&pkt).unwrap();
        assert_eq!(hit.priority, 10);
    }

    #[test]
    fn equal_priority_first_installed_wins() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(5, m(1), vec![Action::set(Field::Port, 7u32)]));
        t.install(FlowRule::new(5, m(1), vec![Action::set(Field::Port, 8u32)]));
        let pkt = Packet::new().with(Field::Port, 1u32);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(7));
    }

    #[test]
    fn counters_track_hits() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, Match::any(), vec![]));
        let pkt = Packet::new();
        t.lookup(&pkt);
        t.lookup(&pkt);
        assert_eq!(t.rules()[0].packet_count, 2);
        assert_eq!(t.total_hits(), 2);
    }

    #[test]
    fn cookie_removal() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, m(1), vec![]).with_cookie(7));
        t.install(FlowRule::new(2, m(2), vec![]).with_cookie(7));
        t.install(FlowRule::new(3, m(3), vec![]).with_cookie(9));
        assert_eq!(t.remove_by_cookie(7), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rules()[0].cookie, 9);
    }

    #[test]
    fn classifier_install_preserves_order() {
        use sdx_policy::{fwd, match_};
        let policy =
            (match_(Field::DstPort, 80u16) >> fwd(1)) + (match_(Field::DstPort, 443u16) >> fwd(2));
        let classifier = policy.compile();
        let mut t = FlowTable::new();
        t.install_classifier(&classifier, 1);
        assert_eq!(t.len(), classifier.len());
        // Behavior matches the classifier on a sample.
        let pkt = Packet::new().with(Field::DstPort, 443u16);
        let rule = t.peek(&pkt).unwrap();
        assert_eq!(rule.actions[0].get(Field::Port), Some(2));
    }

    #[test]
    fn append_classifier_overrides_existing() {
        use sdx_policy::{fwd, match_};
        let mut t = FlowTable::new();
        t.install_classifier(&(match_(Field::DstPort, 80u16) >> fwd(1)).compile(), 1);
        let before = t.len() as u32;
        // Fast-path overlay sends port-80 to 2 instead.
        t.append_classifier(
            &(match_(Field::DstPort, 80u16) >> fwd(2)).compile(),
            2,
            before,
        );
        let pkt = Packet::new().with(Field::DstPort, 80u16);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(2));
        // Removing the overlay restores the original behavior.
        t.remove_by_cookie(2);
        assert_eq!(t.peek(&pkt).unwrap().actions[0].get(Field::Port), Some(1));
    }
}
