//! The SDX data plane: OpenFlow-style flow tables, a software switch, ARP
//! machinery, and a border-router model implementing stage one of the
//! paper's multi-stage FIB (§4.2).
//!
//! ```
//! use sdx_switch::SoftSwitch;
//! use sdx_policy::{fwd, match_, Field, Packet};
//! use std::net::Ipv4Addr;
//!
//! let mut sw = SoftSwitch::new([1, 2]);
//! sw.install_classifier(&(match_(Field::DstPort, 80u16) >> fwd(2)).compile(), 1);
//! let pkt = Packet::tcp(1, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(20, 0, 0, 1), 4000, 80);
//! let out = sw.process(&pkt);
//! assert_eq!(out[0].0, 2);
//! ```

mod arp;
mod frame;
mod index;
pub mod openflow;
mod pcap;
mod router;
mod shard;
mod switch;
mod table;

pub use arp::{ArpReply, ArpRequest, ArpResponder, ETHTYPE_ARP, ETHTYPE_IPV4};
pub use frame::{decode_frame, encode_frame, FrameError};
pub use index::IndexStats;
pub use pcap::{read_pcap, CapturedFrame, PcapError, PcapWriter};
pub use router::{BorderRouter, Forward};
pub use shard::{flow_hash, ShardedSwitch};
pub use switch::{BatchOutput, SoftSwitch, SwitchStats};
pub use table::{FlowRule, FlowTable, InstallError};
