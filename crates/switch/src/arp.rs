//! ARP modelling: requests, replies, and the SDX controller's ARP responder
//! that answers queries for virtual next-hop (VNH) addresses with the
//! corresponding virtual MAC (VMAC) tag (§4.2, §5.1 of the paper).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sdx_ip::MacAddr;
use sdx_policy::{Field, Packet};

/// EtherType for ARP frames.
pub const ETHTYPE_ARP: u16 = 0x0806;
/// EtherType for IPv4 frames.
pub const ETHTYPE_IPV4: u16 = 0x0800;

/// An ARP request ("who has `target_ip`? tell `sender`").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpRequest {
    /// Requester's MAC.
    pub sender_mac: MacAddr,
    /// Requester's IP.
    pub sender_ip: Ipv4Addr,
    /// Address being resolved.
    pub target_ip: Ipv4Addr,
}

/// An ARP reply ("`sender_ip` is at `sender_mac`").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpReply {
    /// Resolved MAC.
    pub sender_mac: MacAddr,
    /// Resolved IP.
    pub sender_ip: Ipv4Addr,
    /// Original requester's MAC (unicast destination of the reply).
    pub target_mac: MacAddr,
    /// Original requester's IP.
    pub target_ip: Ipv4Addr,
}

impl ArpRequest {
    /// Render the request as a located packet (broadcast frame) entering the
    /// fabric on `port`, so flow rules can match/flood it.
    pub fn to_packet(&self, port: u32) -> Packet {
        Packet::new()
            .with(Field::Port, port)
            .with(Field::EthType, ETHTYPE_ARP)
            .with(Field::SrcMac, self.sender_mac)
            .with(Field::DstMac, MacAddr::BROADCAST)
            .with(Field::SrcIp, self.sender_ip)
            .with(Field::DstIp, self.target_ip)
    }
}

/// The SDX ARP responder: a table from IP (notably each VNH) to MAC
/// (the VMAC tag standing for a forwarding equivalence class).
#[derive(Debug, Clone, Default)]
pub struct ArpResponder {
    bindings: BTreeMap<Ipv4Addr, MacAddr>,
}

impl ArpResponder {
    /// An empty responder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind an IP to a MAC (insert or update).
    pub fn bind(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.bindings.insert(ip, mac);
    }

    /// Remove a binding.
    pub fn unbind(&mut self, ip: &Ipv4Addr) -> Option<MacAddr> {
        self.bindings.remove(ip)
    }

    /// Resolve an IP without generating a reply.
    pub fn resolve(&self, ip: &Ipv4Addr) -> Option<MacAddr> {
        self.bindings.get(ip).copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the responder has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Answer an ARP request, if the target is known.
    pub fn respond(&self, req: &ArpRequest) -> Option<ArpReply> {
        let mac = self.resolve(&req.target_ip)?;
        Some(ArpReply {
            sender_mac: mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> ArpRequest {
        ArpRequest {
            sender_mac: MacAddr::from_u64(0xaa),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_ip: Ipv4Addr::new(172, 16, 0, 5),
        }
    }

    #[test]
    fn responds_for_known_binding() {
        let mut arp = ArpResponder::new();
        let vmac = MacAddr::vmac(5);
        arp.bind(Ipv4Addr::new(172, 16, 0, 5), vmac);
        let reply = arp.respond(&req()).unwrap();
        assert_eq!(reply.sender_mac, vmac);
        assert_eq!(reply.sender_ip, Ipv4Addr::new(172, 16, 0, 5));
        assert_eq!(reply.target_mac, MacAddr::from_u64(0xaa));
    }

    #[test]
    fn silent_for_unknown_target() {
        let arp = ArpResponder::new();
        assert!(arp.respond(&req()).is_none());
    }

    #[test]
    fn rebind_updates() {
        let mut arp = ArpResponder::new();
        let ip = Ipv4Addr::new(172, 16, 0, 5);
        arp.bind(ip, MacAddr::vmac(1));
        arp.bind(ip, MacAddr::vmac(2));
        assert_eq!(arp.resolve(&ip), Some(MacAddr::vmac(2)));
        assert_eq!(arp.len(), 1);
        assert_eq!(arp.unbind(&ip), Some(MacAddr::vmac(2)));
        assert!(arp.is_empty());
    }

    #[test]
    fn request_packet_is_broadcast_arp() {
        let pkt = req().to_packet(3);
        assert_eq!(pkt.get(Field::EthType), Some(ETHTYPE_ARP as u64));
        assert_eq!(pkt.dst_mac(), Some(MacAddr::BROADCAST));
        assert_eq!(pkt.port(), Some(3));
    }
}
