//! OpenFlow 1.0 southbound codec: serialize compiled flow rules as
//! `OFPT_FLOW_MOD` messages a real switch accepts — the paper's controller
//! ultimately "translates the SDX policy into forwarding rules … on
//! OpenFlow switches". Covers the match fields and actions the SDX
//! generates (in-port, MACs, EtherType, IPs with CIDR wildcarding, IP
//! protocol, transport ports; set-field and output actions), with a decoder
//! for round-trip testing.

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sdx_ip::MacAddr;
use sdx_policy::{Action, Field, Match, Pattern};

use crate::{FlowRule, FlowTable};

/// OpenFlow protocol version 1.0.
pub const OFP_VERSION: u8 = 0x01;
/// OFPT_FLOW_MOD message type.
pub const OFPT_FLOW_MOD: u8 = 14;
/// OFPFC_ADD command.
pub const OFPFC_ADD: u16 = 0;
/// Maximum valid physical port number in OpenFlow 1.0.
pub const OFPP_MAX: u16 = 0xff00;

mod wildcard {
    pub const IN_PORT: u32 = 1 << 0;
    pub const DL_VLAN: u32 = 1 << 1;
    pub const DL_SRC: u32 = 1 << 2;
    pub const DL_DST: u32 = 1 << 3;
    pub const DL_TYPE: u32 = 1 << 4;
    pub const NW_PROTO: u32 = 1 << 5;
    pub const TP_SRC: u32 = 1 << 6;
    pub const TP_DST: u32 = 1 << 7;
    pub const NW_SRC_SHIFT: u32 = 8;
    pub const NW_DST_SHIFT: u32 = 14;
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    pub const NW_TOS: u32 = 1 << 21;
    /// Everything the SDX never constrains.
    pub const ALWAYS: u32 = DL_VLAN | DL_VLAN_PCP | NW_TOS;
}

mod action_type {
    pub const OUTPUT: u16 = 0;
    pub const SET_DL_SRC: u16 = 4;
    pub const SET_DL_DST: u16 = 5;
    pub const SET_NW_SRC: u16 = 6;
    pub const SET_NW_DST: u16 = 7;
    pub const SET_TP_SRC: u16 = 9;
    pub const SET_TP_DST: u16 = 10;
}

/// Conversion failures: the rule uses something OpenFlow 1.0 cannot express.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowModError {
    /// A port number exceeds the 16-bit OpenFlow 1.0 port space (virtual
    /// ports never reach the wire; only composed physical-port rules do).
    PortOutOfRange(u64),
    /// A priority exceeds 16 bits.
    PriorityOutOfRange(u32),
    /// An action assigns a field OpenFlow 1.0 has no setter for.
    UnsupportedSetField(Field),
    /// An action has no output port.
    MissingOutput,
    /// Multicast actions with differing assignment sets would leak
    /// set-field state between outputs on a 1.0 switch.
    UnsupportedMulticast,
    /// Decoder: malformed message.
    Malformed(&'static str),
}

impl std::fmt::Display for FlowModError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowModError::PortOutOfRange(p) => write!(f, "port {p} exceeds OpenFlow 1.0 range"),
            FlowModError::PriorityOutOfRange(p) => write!(f, "priority {p} exceeds 16 bits"),
            FlowModError::UnsupportedSetField(field) => {
                write!(f, "OpenFlow 1.0 cannot set field {field}")
            }
            FlowModError::MissingOutput => write!(f, "action has no output port"),
            FlowModError::UnsupportedMulticast => {
                write!(f, "multicast actions assign different field sets")
            }
            FlowModError::Malformed(what) => write!(f, "malformed flow mod: {what}"),
        }
    }
}

impl std::error::Error for FlowModError {}

fn port16(v: u64) -> Result<u16, FlowModError> {
    let p = u16::try_from(v).map_err(|_| FlowModError::PortOutOfRange(v))?;
    if p > OFPP_MAX {
        return Err(FlowModError::PortOutOfRange(v));
    }
    Ok(p)
}

/// Serialize one rule as an `OFPT_FLOW_MOD` (ADD).
pub fn encode_flow_mod(rule: &FlowRule, xid: u32) -> Result<Bytes, FlowModError> {
    let priority = u16::try_from(rule.priority)
        .map_err(|_| FlowModError::PriorityOutOfRange(rule.priority))?;

    // ---- ofp_match --------------------------------------------------------
    let mut wildcards = wildcard::ALWAYS
        | wildcard::IN_PORT
        | wildcard::DL_SRC
        | wildcard::DL_DST
        | wildcard::DL_TYPE
        | wildcard::NW_PROTO
        | wildcard::TP_SRC
        | wildcard::TP_DST
        | (32 << wildcard::NW_SRC_SHIFT)
        | (32 << wildcard::NW_DST_SHIFT);
    let mut in_port = 0u16;
    let mut dl_src = [0u8; 6];
    let mut dl_dst = [0u8; 6];
    let mut dl_type = 0u16;
    let mut nw_proto = 0u8;
    let mut nw_src = 0u32;
    let mut nw_dst = 0u32;
    let mut tp_src = 0u16;
    let mut tp_dst = 0u16;

    for (field, pattern) in rule.match_.iter() {
        match (field, pattern) {
            (Field::Port, Pattern::Exact(v)) => {
                in_port = port16(*v)?;
                wildcards &= !wildcard::IN_PORT;
            }
            (Field::SrcMac, Pattern::Exact(v)) => {
                dl_src = MacAddr::from_u64(*v).0;
                wildcards &= !wildcard::DL_SRC;
            }
            (Field::DstMac, Pattern::Exact(v)) => {
                dl_dst = MacAddr::from_u64(*v).0;
                wildcards &= !wildcard::DL_DST;
            }
            (Field::EthType, Pattern::Exact(v)) => {
                dl_type = *v as u16;
                wildcards &= !wildcard::DL_TYPE;
            }
            (Field::IpProto, Pattern::Exact(v)) => {
                nw_proto = *v as u8;
                wildcards &= !wildcard::NW_PROTO;
            }
            (Field::SrcPort, Pattern::Exact(v)) => {
                tp_src = *v as u16;
                wildcards &= !wildcard::TP_SRC;
            }
            (Field::DstPort, Pattern::Exact(v)) => {
                tp_dst = *v as u16;
                wildcards &= !wildcard::TP_DST;
            }
            (Field::SrcIp, pat) => {
                let (bits, len) = ip_pattern(pat);
                nw_src = bits;
                wildcards &= !(0x3f << wildcard::NW_SRC_SHIFT);
                wildcards |= ((32 - len as u32) & 0x3f) << wildcard::NW_SRC_SHIFT;
            }
            (Field::DstIp, pat) => {
                let (bits, len) = ip_pattern(pat);
                nw_dst = bits;
                wildcards &= !(0x3f << wildcard::NW_DST_SHIFT);
                wildcards |= ((32 - len as u32) & 0x3f) << wildcard::NW_DST_SHIFT;
            }
            // Prefix patterns only occur on IP fields by construction.
            (_, Pattern::Prefix(_)) => {
                return Err(FlowModError::Malformed("prefix pattern on non-IP field"))
            }
        }
    }

    // ---- actions ----------------------------------------------------------
    let mut actions = BytesMut::new();
    if !rule.actions.is_empty() {
        // OpenFlow 1.0 applies actions sequentially: set-field state leaks
        // into later outputs, so multicast is only expressible when every
        // branch assigns the same fields.
        let first_keys: Vec<Field> = rule.actions[0].iter().map(|(f, _)| *f).collect();
        for a in &rule.actions[1..] {
            let keys: Vec<Field> = a.iter().map(|(f, _)| *f).collect();
            if keys != first_keys {
                return Err(FlowModError::UnsupportedMulticast);
            }
        }
        for action in &rule.actions {
            encode_action(action, &mut actions)?;
        }
    }

    // ---- message ----------------------------------------------------------
    let total_len = 8 + 40 + 24 + actions.len();
    let mut out = BytesMut::with_capacity(total_len);
    out.put_u8(OFP_VERSION);
    out.put_u8(OFPT_FLOW_MOD);
    out.put_u16(total_len as u16);
    out.put_u32(xid);
    // ofp_match
    out.put_u32(wildcards);
    out.put_u16(in_port);
    out.put_slice(&dl_src);
    out.put_slice(&dl_dst);
    out.put_u16(0); // dl_vlan
    out.put_u8(0); // dl_vlan_pcp
    out.put_u8(0); // pad
    out.put_u16(dl_type);
    out.put_u8(0); // nw_tos
    out.put_u8(nw_proto);
    out.put_u16(0); // pad
    out.put_u32(nw_src);
    out.put_u32(nw_dst);
    out.put_u16(tp_src);
    out.put_u16(tp_dst);
    // flow mod body
    out.put_u64(rule.cookie);
    out.put_u16(OFPFC_ADD);
    out.put_u16(0); // idle_timeout
    out.put_u16(0); // hard_timeout
    out.put_u16(priority);
    out.put_u32(u32::MAX); // buffer_id: none
    out.put_u16(0xffff); // out_port: OFPP_NONE
    out.put_u16(0); // flags
    out.put_slice(&actions);
    Ok(out.freeze())
}

fn ip_pattern(pat: &Pattern) -> (u32, u8) {
    match pat {
        Pattern::Exact(v) => (*v as u32, 32),
        Pattern::Prefix(p) => (p.bits(), p.len()),
    }
}

fn encode_action(action: &Action, out: &mut BytesMut) -> Result<(), FlowModError> {
    let mut output: Option<u16> = None;
    for (field, value) in action.iter() {
        match field {
            Field::Port => output = Some(port16(*value)?),
            Field::SrcMac | Field::DstMac => {
                out.put_u16(if *field == Field::SrcMac {
                    action_type::SET_DL_SRC
                } else {
                    action_type::SET_DL_DST
                });
                out.put_u16(16);
                out.put_slice(&MacAddr::from_u64(*value).0);
                out.put_slice(&[0u8; 6]);
            }
            Field::SrcIp | Field::DstIp => {
                out.put_u16(if *field == Field::SrcIp {
                    action_type::SET_NW_SRC
                } else {
                    action_type::SET_NW_DST
                });
                out.put_u16(8);
                out.put_u32(*value as u32);
            }
            Field::SrcPort | Field::DstPort => {
                out.put_u16(if *field == Field::SrcPort {
                    action_type::SET_TP_SRC
                } else {
                    action_type::SET_TP_DST
                });
                out.put_u16(8);
                out.put_u16(*value as u16);
                out.put_u16(0);
            }
            other => return Err(FlowModError::UnsupportedSetField(*other)),
        }
    }
    let port = output.ok_or(FlowModError::MissingOutput)?;
    out.put_u16(action_type::OUTPUT);
    out.put_u16(8);
    out.put_u16(port);
    out.put_u16(0xffff); // max_len (send full packet to controller if ever used)
    Ok(())
}

/// Serialize a whole flow table as ADD flow mods, highest priority first.
pub fn flow_mods_for_table(table: &FlowTable) -> Result<Vec<Bytes>, FlowModError> {
    table
        .rules()
        .iter()
        .enumerate()
        .map(|(i, rule)| encode_flow_mod(rule, i as u32))
        .collect()
}

/// Decode an `OFPT_FLOW_MOD` back into a [`FlowRule`] (round-trip testing
/// and controller introspection).
pub fn decode_flow_mod(bytes: &[u8]) -> Result<FlowRule, FlowModError> {
    let mut buf = bytes;
    if buf.len() < 8 + 40 + 24 {
        return Err(FlowModError::Malformed("too short"));
    }
    let version = buf.get_u8();
    let msg_type = buf.get_u8();
    if version != OFP_VERSION || msg_type != OFPT_FLOW_MOD {
        return Err(FlowModError::Malformed("not a v1.0 flow mod"));
    }
    let total_len = buf.get_u16() as usize;
    if total_len != bytes.len() {
        return Err(FlowModError::Malformed("length mismatch"));
    }
    buf.advance(4); // xid

    let wildcards = buf.get_u32();
    let in_port = buf.get_u16();
    let mut dl_src = [0u8; 6];
    buf.copy_to_slice(&mut dl_src);
    let mut dl_dst = [0u8; 6];
    buf.copy_to_slice(&mut dl_dst);
    buf.advance(4); // dl_vlan, pcp, pad
    let dl_type = buf.get_u16();
    buf.advance(1); // nw_tos
    let nw_proto = buf.get_u8();
    buf.advance(2); // pad
    let nw_src = buf.get_u32();
    let nw_dst = buf.get_u32();
    let tp_src = buf.get_u16();
    let tp_dst = buf.get_u16();

    let mut match_ = Match::any();
    let mut constrain = |field: Field, pat: Pattern| {
        match_ = match_.clone().and(field, pat).expect("distinct fields");
    };
    if wildcards & wildcard::IN_PORT == 0 {
        constrain(Field::Port, Pattern::Exact(in_port as u64));
    }
    if wildcards & wildcard::DL_SRC == 0 {
        constrain(Field::SrcMac, Pattern::Exact(MacAddr(dl_src).to_u64()));
    }
    if wildcards & wildcard::DL_DST == 0 {
        constrain(Field::DstMac, Pattern::Exact(MacAddr(dl_dst).to_u64()));
    }
    if wildcards & wildcard::DL_TYPE == 0 {
        constrain(Field::EthType, Pattern::Exact(dl_type as u64));
    }
    if wildcards & wildcard::NW_PROTO == 0 {
        constrain(Field::IpProto, Pattern::Exact(nw_proto as u64));
    }
    if wildcards & wildcard::TP_SRC == 0 {
        constrain(Field::SrcPort, Pattern::Exact(tp_src as u64));
    }
    if wildcards & wildcard::TP_DST == 0 {
        constrain(Field::DstPort, Pattern::Exact(tp_dst as u64));
    }
    for (field, bits, shift) in [
        (Field::SrcIp, nw_src, wildcard::NW_SRC_SHIFT),
        (Field::DstIp, nw_dst, wildcard::NW_DST_SHIFT),
    ] {
        let wild = ((wildcards >> shift) & 0x3f).min(32) as u8;
        if wild < 32 {
            let prefix = sdx_ip::Prefix::from_bits(bits, 32 - wild);
            constrain(field, Pattern::Prefix(prefix).canonical());
        }
    }

    let cookie = buf.get_u64();
    buf.advance(2 + 2 + 2); // command, idle, hard
    let priority = buf.get_u16() as u32;
    buf.advance(4 + 2 + 2); // buffer, out_port, flags

    // Actions: accumulate set-fields until each OUTPUT closes one action.
    let mut actions = Vec::new();
    let mut current = Action::identity();
    while !buf.is_empty() {
        if buf.len() < 4 {
            return Err(FlowModError::Malformed("action header"));
        }
        let a_type = buf.get_u16();
        let a_len = buf.get_u16() as usize;
        if a_len < 8 || buf.len() < a_len - 4 {
            return Err(FlowModError::Malformed("action length"));
        }
        match a_type {
            action_type::OUTPUT => {
                let port = buf.get_u16();
                buf.advance(2);
                actions.push(current.clone().with(Field::Port, port as u32));
            }
            action_type::SET_DL_SRC | action_type::SET_DL_DST => {
                let mut mac = [0u8; 6];
                buf.copy_to_slice(&mut mac);
                buf.advance(6);
                let field = if a_type == action_type::SET_DL_SRC {
                    Field::SrcMac
                } else {
                    Field::DstMac
                };
                current = current.with(field, MacAddr(mac));
            }
            action_type::SET_NW_SRC | action_type::SET_NW_DST => {
                let ip = buf.get_u32();
                let field = if a_type == action_type::SET_NW_SRC {
                    Field::SrcIp
                } else {
                    Field::DstIp
                };
                current = current.with(field, Ipv4Addr::from(ip));
            }
            action_type::SET_TP_SRC | action_type::SET_TP_DST => {
                let port = buf.get_u16();
                buf.advance(2);
                let field = if a_type == action_type::SET_TP_SRC {
                    Field::SrcPort
                } else {
                    Field::DstPort
                };
                current = current.with(field, port);
            }
            _ => return Err(FlowModError::Malformed("unknown action type")),
        }
    }

    Ok(FlowRule::new(priority, match_, actions).with_cookie(cookie))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::Packet;

    fn rule() -> FlowRule {
        let match_ = Match::on(Field::Port, Pattern::Exact(1))
            .and(Field::DstMac, Pattern::Exact(MacAddr::vmac(7).to_u64()))
            .unwrap()
            .and(Field::DstPort, Pattern::Exact(80))
            .unwrap()
            .and(Field::SrcIp, Pattern::Prefix("10.0.0.0/8".parse().unwrap()))
            .unwrap();
        let action = Action::set(Field::DstMac, MacAddr::from_u64(0xbb))
            .with(Field::Port, 4u32)
            .with(Field::DstIp, Ipv4Addr::new(9, 9, 9, 9));
        FlowRule::new(100, match_, vec![action]).with_cookie(0xdead_beef)
    }

    #[test]
    fn flow_mod_round_trip() {
        let original = rule();
        let wire = encode_flow_mod(&original, 42).unwrap();
        let decoded = decode_flow_mod(&wire).unwrap();
        assert_eq!(decoded.priority, original.priority);
        assert_eq!(decoded.cookie, original.cookie);
        assert_eq!(decoded.match_, original.match_);
        assert_eq!(decoded.actions, original.actions);
    }

    #[test]
    fn round_trip_preserves_semantics_on_packets() {
        let original = rule();
        let decoded = decode_flow_mod(&encode_flow_mod(&original, 1).unwrap()).unwrap();
        let pkt = Packet::new()
            .with(Field::Port, 1u32)
            .with(Field::DstMac, MacAddr::vmac(7))
            .with(Field::DstPort, 80u16)
            .with(Field::SrcIp, Ipv4Addr::new(10, 3, 2, 1));
        assert!(original.match_.matches(&pkt));
        assert!(decoded.match_.matches(&pkt));
        let a = original.actions[0].apply(&pkt);
        let b = decoded.actions[0].apply(&pkt);
        assert_eq!(a, b);
    }

    #[test]
    fn drop_rule_has_no_actions() {
        let drop = FlowRule::new(5, Match::any(), vec![]);
        let decoded = decode_flow_mod(&encode_flow_mod(&drop, 1).unwrap()).unwrap();
        assert!(decoded.actions.is_empty());
        assert!(decoded.match_.is_any());
    }

    #[test]
    fn virtual_ports_are_rejected() {
        let r = FlowRule::new(1, Match::on(Field::Port, Pattern::Exact(1_000_001)), vec![]);
        assert!(matches!(
            encode_flow_mod(&r, 1),
            Err(FlowModError::PortOutOfRange(_))
        ));
        let r = FlowRule::new(
            1,
            Match::any(),
            vec![Action::set(Field::Port, 1_000_001u32)],
        );
        assert!(matches!(
            encode_flow_mod(&r, 1),
            Err(FlowModError::PortOutOfRange(_))
        ));
    }

    #[test]
    fn heterogeneous_multicast_rejected() {
        let a1 = Action::set(Field::Port, 2u32);
        let a2 = Action::set(Field::Port, 3u32).with(Field::DstIp, Ipv4Addr::new(1, 1, 1, 1));
        let r = FlowRule::new(1, Match::any(), vec![a1, a2]);
        assert_eq!(
            encode_flow_mod(&r, 1).unwrap_err(),
            FlowModError::UnsupportedMulticast
        );
    }

    #[test]
    fn homogeneous_multicast_round_trips() {
        let a1 = Action::set(Field::Port, 2u32);
        let a2 = Action::set(Field::Port, 3u32);
        let r = FlowRule::new(1, Match::any(), vec![a1, a2]);
        let decoded = decode_flow_mod(&encode_flow_mod(&r, 1).unwrap()).unwrap();
        assert_eq!(decoded.actions.len(), 2);
        assert_eq!(decoded.actions[1].get(Field::Port), Some(3));
    }

    #[test]
    fn whole_table_serializes() {
        use sdx_policy::{fwd, match_};
        let mut table = FlowTable::new();
        table.install_classifier(
            &((match_(Field::DstPort, 80u16) >> fwd(2))
                + (match_(Field::DstPort, 443u16) >> fwd(3)))
            .compile(),
            7,
        );
        let mods = flow_mods_for_table(&table).unwrap();
        assert_eq!(mods.len(), table.len());
        for m in &mods {
            assert_eq!(m[0], OFP_VERSION);
            assert_eq!(m[1], OFPT_FLOW_MOD);
        }
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(decode_flow_mod(&[]).is_err());
        let wire = encode_flow_mod(&rule(), 1).unwrap();
        assert!(decode_flow_mod(&wire[..wire.len() - 1]).is_err());
        let mut bad = wire.to_vec();
        bad[0] = 0x04; // OpenFlow 1.3 version
        assert!(decode_flow_mod(&bad).is_err());
    }
}
