use std::collections::BTreeSet;

use sdx_policy::{Classifier, Field, Packet};

use crate::index::IndexStats;
use crate::{FlowRule, FlowTable};

/// A software SDN switch: a set of ports and one flow table.
///
/// The semantics follow the located-packet model: a packet arrives carrying
/// its ingress port in `Field::Port`; the matching rule's actions rewrite
/// headers (including `Port`, which selects the egress). The switch emits
/// one packet per action whose final `Port` is a real port of the switch —
/// actions leaving the packet on a virtual (non-existent) port indicate a
/// compilation bug and are dropped with a counter.
///
/// Lookups use the tables' tuple-space index (see [`crate::index`]); set
/// [`set_linear_scan`](Self::set_linear_scan) to force the O(rules) linear
/// scan instead — the baseline the dataplane bench measures against and the
/// oracle the ci smoke diffs the index against.
#[derive(Debug, Clone, Default)]
pub struct SoftSwitch {
    ports: BTreeSet<u32>,
    tables: Vec<FlowTable>,
    stats: SwitchStats,
    linear_scan: bool,
}

/// Counters the simulations and tests assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets that arrived on a known port.
    pub received: u64,
    /// Packets emitted on an egress port.
    pub forwarded: u64,
    /// Packets dropped because no rule matched or the rule had no actions.
    pub dropped: u64,
    /// Packets whose action left them on an unknown port (should be zero for
    /// a correct SDX compilation).
    pub misdirected: u64,
    /// Packets that arrived on an unknown port.
    pub bad_ingress: u64,
}

impl SoftSwitch {
    /// A switch with the given physical ports and a single flow table.
    pub fn new(ports: impl IntoIterator<Item = u32>) -> Self {
        Self::with_tables(ports, 1)
    }

    /// A switch with an OpenFlow-style pipeline of `n_tables` flow tables.
    pub fn with_tables(ports: impl IntoIterator<Item = u32>, n_tables: usize) -> Self {
        SoftSwitch {
            ports: ports.into_iter().collect(),
            tables: (0..n_tables.max(1)).map(|_| FlowTable::new()).collect(),
            stats: SwitchStats::default(),
            linear_scan: false,
        }
    }

    /// Resize the pipeline (clears all tables).
    pub fn reset_pipeline(&mut self, n_tables: usize) {
        self.tables = (0..n_tables.max(1)).map(|_| FlowTable::new()).collect();
    }

    /// Number of pipeline tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total rules across the pipeline.
    pub fn total_rules(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Read access to pipeline table `i`.
    pub fn table_at(&self, i: usize) -> Option<&FlowTable> {
        self.tables.get(i)
    }

    /// Mutable access to pipeline table `i`.
    pub fn table_at_mut(&mut self, i: usize) -> Option<&mut FlowTable> {
        self.tables.get_mut(i)
    }

    /// Add a port.
    pub fn add_port(&mut self, port: u32) {
        self.ports.insert(port);
    }

    /// The switch's ports.
    pub fn ports(&self) -> impl Iterator<Item = &u32> {
        self.ports.iter()
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Force (or lift) linear-scan lookups in every pipeline table. The
    /// linear scan is the semantic oracle for the tuple-space index; the
    /// dataplane bench uses it as its speedup baseline.
    pub fn set_linear_scan(&mut self, linear: bool) {
        self.linear_scan = linear;
    }

    /// Whether lookups bypass the index.
    pub fn linear_scan(&self) -> bool {
        self.linear_scan
    }

    /// Aggregate index size across the pipeline.
    pub fn index_stats(&self) -> IndexStats {
        self.tables
            .iter()
            .map(FlowTable::index_stats)
            .fold(IndexStats::default(), IndexStats::merge)
    }

    /// Read access to the first flow table.
    pub fn table(&self) -> &FlowTable {
        &self.tables[0]
    }

    /// Mutable access to the first flow table (rule installation).
    pub fn table_mut(&mut self) -> &mut FlowTable {
        &mut self.tables[0]
    }

    /// Replace the first table with a compiled classifier.
    pub fn install_classifier(&mut self, classifier: &Classifier, cookie: u64) {
        self.tables[0].install_classifier(classifier, cookie);
    }

    /// Install one rule into the first table.
    pub fn install_rule(&mut self, rule: FlowRule) {
        self.tables[0].install(rule);
    }

    /// Process one packet: returns `(egress port, packet)` pairs.
    pub fn process(&mut self, pkt: &Packet) -> Vec<(u32, Packet)> {
        let mut out = Vec::new();
        let mut work = Vec::new();
        self.process_into(pkt, &mut work, &mut out);
        out
    }

    /// Process a batch of packets through the pipeline, reusing one work
    /// buffer across the whole batch. Emitted `(egress, packet)` pairs are
    /// grouped per input packet, in input order.
    pub fn process_batch(&mut self, pkts: &[Packet]) -> Vec<Vec<(u32, Packet)>> {
        let mut work = Vec::new();
        let mut results = Vec::with_capacity(pkts.len());
        for pkt in pkts {
            let mut out = Vec::new();
            self.process_into(pkt, &mut work, &mut out);
            results.push(out);
        }
        results
    }

    /// The pipeline walk behind [`process`](Self::process) and
    /// [`process_batch`](Self::process_batch). `work` is caller-provided
    /// scratch (left empty on return) so batches amortize its allocation.
    fn process_into(
        &mut self,
        pkt: &Packet,
        work: &mut Vec<(usize, Packet)>,
        out: &mut Vec<(u32, Packet)>,
    ) {
        let Some(ingress) = pkt.port() else {
            self.stats.bad_ingress += 1;
            return;
        };
        if !self.ports.contains(&ingress) {
            self.stats.bad_ingress += 1;
            return;
        }
        self.stats.received += 1;

        // Table lookups are read-only (counters are atomic), so the tables
        // borrow immutably while the stats update in place — no cloning of
        // rule actions per packet.
        let SoftSwitch {
            ports,
            tables,
            stats,
            linear_scan,
        } = self;

        // Walk the pipeline: (table, packet) work items; a goto_table rule
        // continues matching, a plain rule emits.
        work.clear();
        work.push((0usize, pkt.clone()));
        let budget = tables.len();
        while let Some((table_idx, pkt)) = work.pop() {
            let Some(table) = tables.get(table_idx) else {
                stats.dropped += 1;
                continue;
            };
            let hit = if *linear_scan {
                table.lookup_linear(&pkt)
            } else {
                table.lookup(&pkt)
            };
            let Some(rule) = hit else {
                stats.dropped += 1;
                continue;
            };
            if rule.actions.is_empty() {
                stats.dropped += 1;
                continue;
            }
            for action in &rule.actions {
                let emitted = action.apply(&pkt);
                match rule.goto_table {
                    // Continue in a strictly later table (OpenFlow forbids
                    // backwards gotos, which also bounds the walk).
                    Some(next) if next > table_idx && next < budget => {
                        work.push((next, emitted));
                    }
                    Some(_) => {
                        stats.misdirected += 1;
                    }
                    None => match emitted.get(Field::Port) {
                        Some(egress) if ports.contains(&(egress as u32)) => {
                            stats.forwarded += 1;
                            out.push((egress as u32, emitted));
                        }
                        _ => {
                            stats.misdirected += 1;
                        }
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{fwd, match_, modify};
    use std::net::Ipv4Addr;

    fn web_packet(port: u32) -> Packet {
        Packet::tcp(
            port,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            80,
        )
    }

    #[test]
    fn forwards_per_installed_policy() {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        let policy =
            (match_(Field::DstPort, 80u16) >> fwd(2)) + (match_(Field::DstPort, 443u16) >> fwd(3));
        sw.install_classifier(&policy.compile(), 1);

        let out = sw.process(&web_packet(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(sw.stats().forwarded, 1);

        let ssh = Packet::tcp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            22,
        );
        assert!(sw.process(&ssh).is_empty());
        assert_eq!(sw.stats().dropped, 1);
    }

    #[test]
    fn rejects_unknown_ingress() {
        let mut sw = SoftSwitch::new([1]);
        let out = sw.process(&web_packet(99));
        assert!(out.is_empty());
        assert_eq!(sw.stats().bad_ingress, 1);
        assert_eq!(sw.stats().received, 0);
    }

    #[test]
    fn counts_misdirected_virtual_ports() {
        let mut sw = SoftSwitch::new([1]);
        // Policy forwards to port 55 which does not exist on this switch.
        sw.install_classifier(&fwd(55).compile(), 1);
        let out = sw.process(&web_packet(1));
        assert!(out.is_empty());
        assert_eq!(sw.stats().misdirected, 1);
    }

    #[test]
    fn header_rewrites_apply() {
        let mut sw = SoftSwitch::new([1, 2]);
        let policy = match_(Field::DstPort, 80u16)
            >> modify(Field::DstIp, Ipv4Addr::new(99, 9, 9, 9))
            >> fwd(2);
        sw.install_classifier(&policy.compile(), 1);
        let out = sw.process(&web_packet(1));
        assert_eq!(out[0].1.dst_ip().unwrap().to_string(), "99.9.9.9");
    }

    #[test]
    fn multicast_emits_copies() {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        sw.install_classifier(&(fwd(2) + fwd(3)).compile(), 1);
        let out = sw.process(&web_packet(1));
        assert_eq!(out.len(), 2);
        let egresses: BTreeSet<u32> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(egresses, BTreeSet::from([2, 3]));
    }

    #[test]
    fn packet_without_port_is_bad_ingress() {
        let mut sw = SoftSwitch::new([1]);
        assert!(sw.process(&Packet::new()).is_empty());
        assert_eq!(sw.stats().bad_ingress, 1);
    }

    #[test]
    fn batch_matches_single_packet_processing() {
        let mut indexed = SoftSwitch::new([1, 2, 3]);
        let mut linear = SoftSwitch::new([1, 2, 3]);
        let policy =
            (match_(Field::DstPort, 80u16) >> fwd(2)) + (match_(Field::DstPort, 443u16) >> fwd(3));
        for sw in [&mut indexed, &mut linear] {
            sw.install_classifier(&policy.compile(), 1);
        }
        linear.set_linear_scan(true);
        assert!(linear.linear_scan());

        let https = Packet::tcp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            443,
        );
        let pkts = vec![web_packet(1), https, web_packet(99)];
        let batched = indexed.process_batch(&pkts);
        let singles: Vec<_> = pkts.iter().map(|p| linear.process(p)).collect();
        assert_eq!(batched, singles);
        assert_eq!(indexed.stats(), linear.stats());
    }
}
