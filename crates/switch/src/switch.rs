use std::collections::BTreeSet;

use sdx_policy::{Classifier, Field, Packet};

use crate::index::IndexStats;
use crate::{FlowRule, FlowTable};

/// A software SDN switch: a set of ports and one flow table.
///
/// The semantics follow the located-packet model: a packet arrives carrying
/// its ingress port in `Field::Port`; the matching rule's actions rewrite
/// headers (including `Port`, which selects the egress). The switch emits
/// one packet per action whose final `Port` is a real port of the switch —
/// actions leaving the packet on a virtual (non-existent) port indicate a
/// compilation bug and are dropped with a counter.
///
/// Lookups use the tables' tuple-space index (see [`crate::index`]); set
/// [`set_linear_scan`](Self::set_linear_scan) to force the O(rules) linear
/// scan instead — the baseline the dataplane bench measures against and the
/// oracle the ci smoke diffs the index against.
///
/// The hot path is allocation-free in steady state: the pipeline walk uses a
/// reusable work buffer owned by the switch, and
/// [`process_batch_into`](Self::process_batch_into) writes emissions into a
/// caller-provided flat [`BatchOutput`] arena instead of one `Vec` per
/// packet. A `generation` counter is bumped by every potentially mutating
/// accessor so the sharded wrapper ([`crate::ShardedSwitch`]) knows when to
/// republish its read-only snapshot.
#[derive(Debug, Clone, Default)]
pub struct SoftSwitch {
    ports: BTreeSet<u32>,
    tables: Vec<FlowTable>,
    stats: SwitchStats,
    linear_scan: bool,
    /// Bumped on every (potentially) mutating access — the epoch source for
    /// snapshot publication.
    generation: u64,
    /// Reusable pipeline-walk scratch; always left empty between packets.
    work: Vec<(usize, Packet)>,
}

/// Counters the simulations and tests assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets that arrived on a known port.
    pub received: u64,
    /// Packets emitted on an egress port.
    pub forwarded: u64,
    /// Packets dropped because no rule matched or the rule had no actions.
    pub dropped: u64,
    /// Packets whose action left them on an unknown port (should be zero for
    /// a correct SDX compilation).
    pub misdirected: u64,
    /// Packets that arrived on an unknown port.
    pub bad_ingress: u64,
}

impl SwitchStats {
    /// Component-wise sum — how per-shard stats aggregate.
    pub fn merge(self, other: SwitchStats) -> SwitchStats {
        SwitchStats {
            received: self.received + other.received,
            forwarded: self.forwarded + other.forwarded,
            dropped: self.dropped + other.dropped,
            misdirected: self.misdirected + other.misdirected,
            bad_ingress: self.bad_ingress + other.bad_ingress,
        }
    }
}

/// Flat per-batch emission arena: every emitted `(egress, packet)` pair in
/// one contiguous buffer, with a span per input packet. Reusing one
/// `BatchOutput` across batches makes the batch path allocation-free once
/// the buffers have grown to the high-water mark (the per-packet `Vec` this
/// replaces allocated on every input).
#[derive(Debug, Clone, Default)]
pub struct BatchOutput {
    items: Vec<(u32, Packet)>,
    /// `(start, end)` into `items`, one per input packet, in input order.
    spans: Vec<(u32, u32)>,
}

impl BatchOutput {
    /// An empty arena (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget the previous batch, keeping capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.spans.clear();
    }

    /// Number of input packets recorded.
    pub fn packets(&self) -> usize {
        self.spans.len()
    }

    /// Total `(egress, packet)` pairs emitted across the batch.
    pub fn emitted(&self) -> usize {
        self.items.len()
    }

    /// The emissions of input packet `i`, in emission order.
    pub fn packet(&self, i: usize) -> &[(u32, Packet)] {
        let (start, end) = self.spans[i];
        &self.items[start as usize..end as usize]
    }

    /// Iterate per-input-packet emission slices, in input order.
    pub fn iter(&self) -> impl Iterator<Item = &[(u32, Packet)]> + '_ {
        self.spans
            .iter()
            .map(|&(s, e)| &self.items[s as usize..e as usize])
    }

    /// Copy out to the owned per-packet shape (the compatibility API).
    pub fn to_vecs(&self) -> Vec<Vec<(u32, Packet)>> {
        self.iter().map(|s| s.to_vec()).collect()
    }

    /// Close the span opened at `start` (the current `items` high-water
    /// mark), attributing everything pushed since to one input packet.
    pub(crate) fn commit_span(&mut self, start: usize) {
        debug_assert!(
            u32::try_from(self.items.len()).is_ok(),
            "batch arena overflow"
        );
        self.spans.push((start as u32, self.items.len() as u32));
    }

    /// Append a ready-made span (the sharded stitch path: copy one shard's
    /// per-packet slice into the caller's arena).
    pub(crate) fn push_span(&mut self, emissions: &[(u32, Packet)]) {
        let start = self.items.len();
        self.items.extend_from_slice(emissions);
        self.commit_span(start);
    }

    /// Direct access to the flat item buffer (the walk appends here).
    pub(crate) fn items_mut(&mut self) -> &mut Vec<(u32, Packet)> {
        &mut self.items
    }
}

/// The pipeline walk shared by the single-threaded switch and the per-core
/// shards: look up `pkt` through `tables` (a goto_table rule continues
/// matching, a plain rule emits on a real port of `ports`), appending
/// emissions to `out` and reporting every rule hit as `hit(table, position)`
/// — the caller decides where the packet counter lives (the table's own
/// atomics for [`SoftSwitch`], a shard-local array for
/// [`crate::ShardedSwitch`]). `work` is caller scratch, left empty on
/// return. Allocation-free once the scratch buffers have warmed up.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipeline_walk(
    ports: &BTreeSet<u32>,
    tables: &[FlowTable],
    linear: bool,
    pkt: &Packet,
    stats: &mut SwitchStats,
    work: &mut Vec<(usize, Packet)>,
    out: &mut Vec<(u32, Packet)>,
    hit: &mut dyn FnMut(usize, usize),
) {
    let Some(ingress) = pkt.port() else {
        stats.bad_ingress += 1;
        return;
    };
    if !ports.contains(&ingress) {
        stats.bad_ingress += 1;
        return;
    }
    stats.received += 1;

    // Walk the pipeline: (table, packet) work items; a goto_table rule
    // continues matching, a plain rule emits.
    work.clear();
    work.push((0usize, pkt.clone()));
    let budget = tables.len();
    while let Some((table_idx, pkt)) = work.pop() {
        let Some(table) = tables.get(table_idx) else {
            stats.dropped += 1;
            continue;
        };
        let pos = if linear {
            table.peek_pos_linear(&pkt)
        } else {
            table.peek_pos(&pkt)
        };
        let Some(pos) = pos else {
            stats.dropped += 1;
            continue;
        };
        hit(table_idx, pos);
        let rule = table.rule_at(pos);
        if rule.actions.is_empty() {
            stats.dropped += 1;
            continue;
        }
        for action in &rule.actions {
            let emitted = action.apply(&pkt);
            match rule.goto_table {
                // Continue in a strictly later table (OpenFlow forbids
                // backwards gotos, which also bounds the walk).
                Some(next) if next > table_idx && next < budget => {
                    work.push((next, emitted));
                }
                Some(_) => {
                    stats.misdirected += 1;
                }
                None => match emitted.get(Field::Port) {
                    Some(egress) if ports.contains(&(egress as u32)) => {
                        stats.forwarded += 1;
                        out.push((egress as u32, emitted));
                    }
                    _ => {
                        stats.misdirected += 1;
                    }
                },
            }
        }
    }
}

impl SoftSwitch {
    /// A switch with the given physical ports and a single flow table.
    pub fn new(ports: impl IntoIterator<Item = u32>) -> Self {
        Self::with_tables(ports, 1)
    }

    /// A switch with an OpenFlow-style pipeline of `n_tables` flow tables.
    pub fn with_tables(ports: impl IntoIterator<Item = u32>, n_tables: usize) -> Self {
        SoftSwitch {
            ports: ports.into_iter().collect(),
            tables: (0..n_tables.max(1)).map(|_| FlowTable::new()).collect(),
            stats: SwitchStats::default(),
            linear_scan: false,
            generation: 0,
            work: Vec::new(),
        }
    }

    /// Resize the pipeline (clears all tables).
    pub fn reset_pipeline(&mut self, n_tables: usize) {
        self.generation += 1;
        self.tables = (0..n_tables.max(1)).map(|_| FlowTable::new()).collect();
    }

    /// Number of pipeline tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total rules across the pipeline.
    pub fn total_rules(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Read access to pipeline table `i`.
    pub fn table_at(&self, i: usize) -> Option<&FlowTable> {
        self.tables.get(i)
    }

    /// Mutable access to pipeline table `i`.
    pub fn table_at_mut(&mut self, i: usize) -> Option<&mut FlowTable> {
        self.generation += 1;
        self.tables.get_mut(i)
    }

    /// Add a port.
    pub fn add_port(&mut self, port: u32) {
        self.generation += 1;
        self.ports.insert(port);
    }

    /// The switch's ports.
    pub fn ports(&self) -> impl Iterator<Item = &u32> {
        self.ports.iter()
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Force (or lift) linear-scan lookups in every pipeline table. The
    /// linear scan is the semantic oracle for the tuple-space index; the
    /// dataplane bench uses it as its speedup baseline.
    pub fn set_linear_scan(&mut self, linear: bool) {
        self.generation += 1;
        self.linear_scan = linear;
    }

    /// Whether lookups bypass the index.
    pub fn linear_scan(&self) -> bool {
        self.linear_scan
    }

    /// Monotone counter bumped by every potentially mutating accessor —
    /// lets a snapshotting reader ([`crate::ShardedSwitch`]) detect staleness
    /// without diffing table contents.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Aggregate index size across the pipeline.
    pub fn index_stats(&self) -> IndexStats {
        self.tables
            .iter()
            .map(FlowTable::index_stats)
            .fold(IndexStats::default(), IndexStats::merge)
    }

    /// Read access to the first flow table.
    pub fn table(&self) -> &FlowTable {
        &self.tables[0]
    }

    /// Mutable access to the first flow table (rule installation).
    pub fn table_mut(&mut self) -> &mut FlowTable {
        self.generation += 1;
        &mut self.tables[0]
    }

    /// The whole pipeline, in traversal order.
    pub(crate) fn tables(&self) -> &[FlowTable] {
        &self.tables
    }

    /// The port set (snapshot cloning).
    pub(crate) fn port_set(&self) -> &BTreeSet<u32> {
        &self.ports
    }

    /// Fold externally accumulated stats in (the sharded counter-
    /// aggregation path).
    pub(crate) fn merge_stats(&mut self, other: SwitchStats) {
        // Deliberately does not bump `generation`: counter aggregation is
        // not a table mutation and must not force a snapshot republish.
        self.stats = self.stats.merge(other);
    }

    /// Replace the first table with a compiled classifier.
    pub fn install_classifier(&mut self, classifier: &Classifier, cookie: u64) {
        self.generation += 1;
        self.tables[0].install_classifier(classifier, cookie);
    }

    /// Install one rule into the first table.
    pub fn install_rule(&mut self, rule: FlowRule) {
        self.generation += 1;
        self.tables[0].install(rule);
    }

    /// Process one packet: returns `(egress port, packet)` pairs.
    pub fn process(&mut self, pkt: &Packet) -> Vec<(u32, Packet)> {
        let mut out = Vec::new();
        let SoftSwitch {
            ports,
            tables,
            stats,
            linear_scan,
            work,
            ..
        } = self;
        pipeline_walk(
            ports,
            tables,
            *linear_scan,
            pkt,
            stats,
            work,
            &mut out,
            &mut |t, pos| tables[t].add_hits(pos, 1),
        );
        out
    }

    /// Process a batch of packets through the pipeline into a reusable flat
    /// arena: zero allocations per packet once `out` and the internal
    /// scratch have warmed up. Emissions are grouped per input packet, in
    /// input order. `out` is cleared first.
    pub fn process_batch_into(&mut self, pkts: &[Packet], out: &mut BatchOutput) {
        out.clear();
        let SoftSwitch {
            ports,
            tables,
            stats,
            linear_scan,
            work,
            ..
        } = self;
        for pkt in pkts {
            let start = out.items.len();
            pipeline_walk(
                ports,
                tables,
                *linear_scan,
                pkt,
                stats,
                work,
                &mut out.items,
                &mut |t, pos| tables[t].add_hits(pos, 1),
            );
            out.commit_span(start);
        }
    }

    /// Process a batch of packets, returning one owned `Vec` per input
    /// packet (the compatibility shape; hot paths should prefer
    /// [`process_batch_into`](Self::process_batch_into)).
    pub fn process_batch(&mut self, pkts: &[Packet]) -> Vec<Vec<(u32, Packet)>> {
        let mut out = BatchOutput::new();
        self.process_batch_into(pkts, &mut out);
        out.to_vecs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{fwd, match_, modify};
    use std::net::Ipv4Addr;

    fn web_packet(port: u32) -> Packet {
        Packet::tcp(
            port,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            80,
        )
    }

    #[test]
    fn forwards_per_installed_policy() {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        let policy =
            (match_(Field::DstPort, 80u16) >> fwd(2)) + (match_(Field::DstPort, 443u16) >> fwd(3));
        sw.install_classifier(&policy.compile(), 1);

        let out = sw.process(&web_packet(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(sw.stats().forwarded, 1);

        let ssh = Packet::tcp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            22,
        );
        assert!(sw.process(&ssh).is_empty());
        assert_eq!(sw.stats().dropped, 1);
    }

    #[test]
    fn rejects_unknown_ingress() {
        let mut sw = SoftSwitch::new([1]);
        let out = sw.process(&web_packet(99));
        assert!(out.is_empty());
        assert_eq!(sw.stats().bad_ingress, 1);
        assert_eq!(sw.stats().received, 0);
    }

    #[test]
    fn counts_misdirected_virtual_ports() {
        let mut sw = SoftSwitch::new([1]);
        // Policy forwards to port 55 which does not exist on this switch.
        sw.install_classifier(&fwd(55).compile(), 1);
        let out = sw.process(&web_packet(1));
        assert!(out.is_empty());
        assert_eq!(sw.stats().misdirected, 1);
    }

    #[test]
    fn header_rewrites_apply() {
        let mut sw = SoftSwitch::new([1, 2]);
        let policy = match_(Field::DstPort, 80u16)
            >> modify(Field::DstIp, Ipv4Addr::new(99, 9, 9, 9))
            >> fwd(2);
        sw.install_classifier(&policy.compile(), 1);
        let out = sw.process(&web_packet(1));
        assert_eq!(out[0].1.dst_ip().unwrap().to_string(), "99.9.9.9");
    }

    #[test]
    fn multicast_emits_copies() {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        sw.install_classifier(&(fwd(2) + fwd(3)).compile(), 1);
        let out = sw.process(&web_packet(1));
        assert_eq!(out.len(), 2);
        let egresses: BTreeSet<u32> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(egresses, BTreeSet::from([2, 3]));
    }

    #[test]
    fn packet_without_port_is_bad_ingress() {
        let mut sw = SoftSwitch::new([1]);
        assert!(sw.process(&Packet::new()).is_empty());
        assert_eq!(sw.stats().bad_ingress, 1);
    }

    #[test]
    fn batch_matches_single_packet_processing() {
        let mut indexed = SoftSwitch::new([1, 2, 3]);
        let mut linear = SoftSwitch::new([1, 2, 3]);
        let policy =
            (match_(Field::DstPort, 80u16) >> fwd(2)) + (match_(Field::DstPort, 443u16) >> fwd(3));
        for sw in [&mut indexed, &mut linear] {
            sw.install_classifier(&policy.compile(), 1);
        }
        linear.set_linear_scan(true);
        assert!(linear.linear_scan());

        let https = Packet::tcp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            443,
        );
        let pkts = vec![web_packet(1), https, web_packet(99)];
        let batched = indexed.process_batch(&pkts);
        let singles: Vec<_> = pkts.iter().map(|p| linear.process(p)).collect();
        assert_eq!(batched, singles);
        assert_eq!(indexed.stats(), linear.stats());
    }

    #[test]
    fn batch_output_arena_spans_group_per_input() {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        sw.install_classifier(
            &((match_(Field::DstPort, 80u16) >> (fwd(2) + fwd(3))).compile()),
            1,
        );
        let pkts = vec![web_packet(1), web_packet(99), web_packet(1)];
        let mut out = BatchOutput::new();
        sw.process_batch_into(&pkts, &mut out);
        assert_eq!(out.packets(), 3);
        assert_eq!(out.emitted(), 4); // two multicast emissions × two hits
        assert_eq!(out.packet(0).len(), 2);
        assert!(out.packet(1).is_empty()); // bad ingress emits nothing
        assert_eq!(out.packet(2).len(), 2);
        assert_eq!(out.to_vecs(), sw.process_batch(&pkts));
        // Reuse keeps capacity and resets contents.
        out.clear();
        assert_eq!(out.packets(), 0);
        assert_eq!(out.emitted(), 0);
    }

    #[test]
    fn generation_tracks_mutating_accessors() {
        let mut sw = SoftSwitch::new([1]);
        let g0 = sw.generation();
        let _ = sw.process(&web_packet(1)); // read path: no bump
        assert_eq!(sw.generation(), g0);
        sw.add_port(2);
        assert!(sw.generation() > g0);
        let g1 = sw.generation();
        let _ = sw.table_mut();
        assert!(sw.generation() > g1);
        let g2 = sw.generation();
        sw.set_linear_scan(true);
        assert!(sw.generation() > g2);
        // Every remaining mutating accessor: a missed bump would let a
        // sharded reader keep serving a stale snapshot forever.
        let g3 = sw.generation();
        sw.install_rule(FlowRule::new(1, sdx_policy::Match::any(), vec![]).with_cookie(9));
        assert!(sw.generation() > g3);
        let g4 = sw.generation();
        let _ = sw.table_at_mut(0);
        assert!(sw.generation() > g4);
        let g5 = sw.generation();
        sw.install_classifier(&Classifier::default(), 10);
        assert!(sw.generation() > g5);
        let g6 = sw.generation();
        sw.reset_pipeline(2);
        assert!(sw.generation() > g6);
        // Pure reads never bump.
        let g7 = sw.generation();
        let _ = (sw.table(), sw.table_at(0), sw.ports(), sw.linear_scan());
        assert_eq!(sw.generation(), g7);
    }
}
