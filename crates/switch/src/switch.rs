use std::collections::BTreeSet;

use sdx_policy::{Classifier, Field, Packet};

use crate::{FlowRule, FlowTable};

/// A software SDN switch: a set of ports and one flow table.
///
/// The semantics follow the located-packet model: a packet arrives carrying
/// its ingress port in `Field::Port`; the matching rule's actions rewrite
/// headers (including `Port`, which selects the egress). The switch emits
/// one packet per action whose final `Port` is a real port of the switch —
/// actions leaving the packet on a virtual (non-existent) port indicate a
/// compilation bug and are dropped with a counter.
#[derive(Debug, Clone, Default)]
pub struct SoftSwitch {
    ports: BTreeSet<u32>,
    tables: Vec<FlowTable>,
    stats: SwitchStats,
}

/// Counters the simulations and tests assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets that arrived on a known port.
    pub received: u64,
    /// Packets emitted on an egress port.
    pub forwarded: u64,
    /// Packets dropped because no rule matched or the rule had no actions.
    pub dropped: u64,
    /// Packets whose action left them on an unknown port (should be zero for
    /// a correct SDX compilation).
    pub misdirected: u64,
    /// Packets that arrived on an unknown port.
    pub bad_ingress: u64,
}

impl SoftSwitch {
    /// A switch with the given physical ports and a single flow table.
    pub fn new(ports: impl IntoIterator<Item = u32>) -> Self {
        Self::with_tables(ports, 1)
    }

    /// A switch with an OpenFlow-style pipeline of `n_tables` flow tables.
    pub fn with_tables(ports: impl IntoIterator<Item = u32>, n_tables: usize) -> Self {
        SoftSwitch {
            ports: ports.into_iter().collect(),
            tables: (0..n_tables.max(1)).map(|_| FlowTable::new()).collect(),
            stats: SwitchStats::default(),
        }
    }

    /// Resize the pipeline (clears all tables).
    pub fn reset_pipeline(&mut self, n_tables: usize) {
        self.tables = (0..n_tables.max(1)).map(|_| FlowTable::new()).collect();
    }

    /// Number of pipeline tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total rules across the pipeline.
    pub fn total_rules(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Read access to pipeline table `i`.
    pub fn table_at(&self, i: usize) -> Option<&FlowTable> {
        self.tables.get(i)
    }

    /// Mutable access to pipeline table `i`.
    pub fn table_at_mut(&mut self, i: usize) -> Option<&mut FlowTable> {
        self.tables.get_mut(i)
    }

    /// Add a port.
    pub fn add_port(&mut self, port: u32) {
        self.ports.insert(port);
    }

    /// The switch's ports.
    pub fn ports(&self) -> impl Iterator<Item = &u32> {
        self.ports.iter()
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Read access to the first flow table.
    pub fn table(&self) -> &FlowTable {
        &self.tables[0]
    }

    /// Mutable access to the first flow table (rule installation).
    pub fn table_mut(&mut self) -> &mut FlowTable {
        &mut self.tables[0]
    }

    /// Replace the first table with a compiled classifier.
    pub fn install_classifier(&mut self, classifier: &Classifier, cookie: u64) {
        self.tables[0].install_classifier(classifier, cookie);
    }

    /// Install one rule into the first table.
    pub fn install_rule(&mut self, rule: FlowRule) {
        self.tables[0].install(rule);
    }

    /// Process one packet: returns `(egress port, packet)` pairs.
    pub fn process(&mut self, pkt: &Packet) -> Vec<(u32, Packet)> {
        let Some(ingress) = pkt.port() else {
            self.stats.bad_ingress += 1;
            return Vec::new();
        };
        if !self.ports.contains(&ingress) {
            self.stats.bad_ingress += 1;
            return Vec::new();
        }
        self.stats.received += 1;

        // Walk the pipeline: (table, packet) work items; a goto_table rule
        // continues matching, a plain rule emits.
        let mut out = Vec::new();
        let mut work = vec![(0usize, pkt.clone())];
        let budget = self.tables.len();
        while let Some((table_idx, pkt)) = work.pop() {
            let Some(table) = self.tables.get_mut(table_idx) else {
                self.stats.dropped += 1;
                continue;
            };
            let Some(rule) = table.lookup(&pkt) else {
                self.stats.dropped += 1;
                continue;
            };
            if rule.actions.is_empty() {
                self.stats.dropped += 1;
                continue;
            }
            let actions = rule.actions.clone();
            let goto = rule.goto_table;
            for action in &actions {
                let emitted = action.apply(&pkt);
                match goto {
                    // Continue in a strictly later table (OpenFlow forbids
                    // backwards gotos, which also bounds the walk).
                    Some(next) if next > table_idx && next < budget => {
                        work.push((next, emitted));
                    }
                    Some(_) => {
                        self.stats.misdirected += 1;
                    }
                    None => match emitted.get(Field::Port) {
                        Some(egress) if self.ports.contains(&(egress as u32)) => {
                            self.stats.forwarded += 1;
                            out.push((egress as u32, emitted));
                        }
                        _ => {
                            self.stats.misdirected += 1;
                        }
                    },
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{fwd, match_, modify};
    use std::net::Ipv4Addr;

    fn web_packet(port: u32) -> Packet {
        Packet::tcp(
            port,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            80,
        )
    }

    #[test]
    fn forwards_per_installed_policy() {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        let policy =
            (match_(Field::DstPort, 80u16) >> fwd(2)) + (match_(Field::DstPort, 443u16) >> fwd(3));
        sw.install_classifier(&policy.compile(), 1);

        let out = sw.process(&web_packet(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(sw.stats().forwarded, 1);

        let ssh = Packet::tcp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5555,
            22,
        );
        assert!(sw.process(&ssh).is_empty());
        assert_eq!(sw.stats().dropped, 1);
    }

    #[test]
    fn rejects_unknown_ingress() {
        let mut sw = SoftSwitch::new([1]);
        let out = sw.process(&web_packet(99));
        assert!(out.is_empty());
        assert_eq!(sw.stats().bad_ingress, 1);
        assert_eq!(sw.stats().received, 0);
    }

    #[test]
    fn counts_misdirected_virtual_ports() {
        let mut sw = SoftSwitch::new([1]);
        // Policy forwards to port 55 which does not exist on this switch.
        sw.install_classifier(&fwd(55).compile(), 1);
        let out = sw.process(&web_packet(1));
        assert!(out.is_empty());
        assert_eq!(sw.stats().misdirected, 1);
    }

    #[test]
    fn header_rewrites_apply() {
        let mut sw = SoftSwitch::new([1, 2]);
        let policy = match_(Field::DstPort, 80u16)
            >> modify(Field::DstIp, Ipv4Addr::new(99, 9, 9, 9))
            >> fwd(2);
        sw.install_classifier(&policy.compile(), 1);
        let out = sw.process(&web_packet(1));
        assert_eq!(out[0].1.dst_ip().unwrap().to_string(), "99.9.9.9");
    }

    #[test]
    fn multicast_emits_copies() {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        sw.install_classifier(&(fwd(2) + fwd(3)).compile(), 1);
        let out = sw.process(&web_packet(1));
        assert_eq!(out.len(), 2);
        let egresses: BTreeSet<u32> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(egresses, BTreeSet::from([2, 3]));
    }

    #[test]
    fn packet_without_port_is_bad_ingress() {
        let mut sw = SoftSwitch::new([1]);
        assert!(sw.process(&Packet::new()).is_empty());
        assert_eq!(sw.stats().bad_ingress, 1);
    }
}
