//! Tuple-space lookup index for [`FlowTable`](crate::FlowTable).
//!
//! A linear flow-table scan pays O(total rules) per packet; at fig8 scale
//! (300 participants, tens of thousands of rules) that dominates the
//! simulated data plane. This module buckets rules by their *match
//! signature* — the set of fields a rule constrains and whether each
//! constraint is exact or a prefix (see [`sdx_policy::MatchSignature`]) —
//! the tuple-space search that Open vSwitch's megaflow classifier uses,
//! with one tuple per signature instead of one per mask.
//!
//! Inside a bucket every rule constrains the same fields the same way, so:
//!
//! * the **exact** fields form a hash key (the packet's values on those
//!   fields select a group in O(1));
//! * at most one **prefix** field (`DstIp` preferred — SDX rules
//!   overwhelmingly constrain destination prefixes) keys a per-group
//!   [`PrefixTrie`], walked along the packet's containing-prefix chain;
//! * the rare remaining prefix constraints (e.g. a rule matching both
//!   `SrcIp` and `DstIp` ranges) ride on each entry as *residual* patterns
//!   checked directly.
//!
//! Buckets are probed in descending order of their highest priority, and
//! probing stops as soon as the current best candidate outranks every
//! remaining bucket's ceiling — most packets touch 1–3 buckets regardless
//! of table size.
//!
//! The index is maintained incrementally on [`insert`](TableIndex::insert)
//! (the §4.3.2 fast path appends overlay rules constantly) and rebuilt from
//! scratch only on removal, which in the SDX workload happens orders of
//! magnitude less often than insertion or lookup.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use sdx_ip::PrefixTrie;
use sdx_policy::{Field, Match, MatchSignature, Packet, Pattern};

/// Size counters for a table's index (reported by the dataplane bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Distinct match signatures (tuple-space buckets).
    pub buckets: usize,
    /// Hash groups across all buckets (distinct exact-field value tuples).
    pub groups: usize,
    /// Rules indexed.
    pub rules: usize,
}

impl IndexStats {
    /// Component-wise sum (aggregating a pipeline of tables).
    pub fn merge(self, other: IndexStats) -> IndexStats {
        IndexStats {
            buckets: self.buckets + other.buckets,
            groups: self.groups + other.groups,
            rules: self.rules + other.rules,
        }
    }
}

/// A candidate rule inside a bucket: the arbitration key plus any prefix
/// constraints not covered by the bucket's trie field.
#[derive(Debug, Clone)]
struct Entry {
    priority: u32,
    /// Install sequence — the first-installed-wins tiebreak within a
    /// priority band, unique per rule within a table.
    seq: u64,
    /// Prefix constraints on fields other than the bucket's primary prefix
    /// field; empty for almost every SDX-compiled rule.
    residual: Box<[(Field, Pattern)]>,
}

impl Entry {
    fn key(&self) -> (u32, u64) {
        (self.priority, self.seq)
    }

    fn satisfied(&self, pkt: &Packet) -> bool {
        self.residual
            .iter()
            .all(|(f, pat)| pkt.get(*f).map(|v| pat.matches(v)).unwrap_or(false))
    }
}

/// Does candidate `a` beat candidate `b`? Higher priority wins; within a
/// priority, the earlier install (smaller sequence number) wins.
fn better(a: (u32, u64), b: (u32, u64)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Entries kept best-first: descending priority, ascending sequence.
fn push_sorted(entries: &mut Vec<Entry>, e: Entry) {
    let pos = entries.partition_point(|x| better(x.key(), e.key()));
    entries.insert(pos, e);
}

/// The per-group store: a plain candidate list when the signature has no
/// prefix field, a prefix trie keyed by the primary prefix field otherwise.
#[derive(Debug, Clone)]
enum Group {
    Flat(Vec<Entry>),
    Trie(PrefixTrie<Vec<Entry>>),
}

/// One tuple-space bucket: all rules sharing a match signature.
#[derive(Debug, Clone)]
struct Bucket {
    /// Fields hashed into the group key, in field order.
    exact_fields: Box<[Field]>,
    /// The trie-keyed prefix field, if the signature has prefix constraints.
    primary: Option<Field>,
    /// The highest priority of any rule in the bucket — the probe-order /
    /// early-exit bound. Monotonically non-decreasing under insertion (the
    /// whole index is rebuilt on removal).
    max_priority: u32,
    rules: usize,
    groups: HashMap<Box<[u64]>, Group>,
}

impl Bucket {
    /// The bucket's best candidate matching `pkt`, if any.
    fn lookup(&self, pkt: &Packet) -> Option<(u32, u64)> {
        // The exact-field values form the group key; a packet missing any
        // constrained header cannot match (matching absent headers is
        // false), so the bucket is skipped outright.
        let mut key = [0u64; Field::ALL.len()];
        for (i, f) in self.exact_fields.iter().enumerate() {
            key[i] = pkt.get(*f)?;
        }
        let group = self.groups.get(&key[..self.exact_fields.len()])?;
        match group {
            Group::Flat(entries) => {
                // Best-first order: the first satisfied entry wins.
                entries.iter().find(|e| e.satisfied(pkt)).map(Entry::key)
            }
            Group::Trie(trie) => {
                let field = self.primary.expect("trie group implies primary field");
                let addr = Ipv4Addr::from(pkt.get(field)? as u32);
                let mut best: Option<(u32, u64)> = None;
                // Every stored prefix containing the address can hold the
                // winner (a shorter prefix may carry a higher priority), so
                // walk the whole containing chain — at most 32 nodes.
                trie.walk(addr, |_prefix, entries| {
                    if let Some(e) = entries.iter().find(|e| e.satisfied(pkt)) {
                        if best.map(|b| better(e.key(), b)).unwrap_or(true) {
                            best = Some(e.key());
                        }
                    }
                });
                best
            }
        }
    }
}

/// The tuple-space index over one flow table's rules. Owned and kept in
/// sync by [`FlowTable`](crate::FlowTable); identifies rules by
/// `(priority, seq)`, which the table maps back to rule storage.
#[derive(Debug, Clone, Default)]
pub(crate) struct TableIndex {
    buckets: Vec<Bucket>,
    by_sig: HashMap<MatchSignature, usize>,
    /// Bucket indices sorted by descending `max_priority` — the probe order.
    order: Vec<usize>,
}

impl TableIndex {
    /// Drop every bucket.
    pub(crate) fn clear(&mut self) {
        self.buckets.clear();
        self.by_sig.clear();
        self.order.clear();
    }

    /// Index one rule. `seq` must be unique within the table and reflect
    /// install order (later installs get larger sequence numbers).
    pub(crate) fn insert(&mut self, m: &Match, priority: u32, seq: u64) {
        let sig = m.signature();
        let bi = match self.by_sig.get(&sig) {
            Some(&i) => i,
            None => {
                let prefix_fields: Vec<Field> = sig.prefix_fields().collect();
                let primary = prefix_fields
                    .iter()
                    .copied()
                    .find(|f| *f == Field::DstIp)
                    .or_else(|| prefix_fields.first().copied());
                let i = self.buckets.len();
                self.buckets.push(Bucket {
                    exact_fields: sig.exact_fields().collect(),
                    primary,
                    max_priority: priority,
                    rules: 0,
                    groups: HashMap::new(),
                });
                self.by_sig.insert(sig, i);
                self.order.push(i);
                i
            }
        };
        let bucket = &mut self.buckets[bi];
        let key: Box<[u64]> = bucket
            .exact_fields
            .iter()
            .map(|f| match m.get(*f) {
                Some(Pattern::Exact(v)) => *v,
                other => unreachable!("signature promised exact pattern, got {other:?}"),
            })
            .collect();
        let residual: Box<[(Field, Pattern)]> = m
            .iter()
            .filter(|(f, p)| matches!(p, Pattern::Prefix(_)) && Some(**f) != bucket.primary)
            .map(|(f, p)| (*f, *p))
            .collect();
        let entry = Entry {
            priority,
            seq,
            residual,
        };
        match bucket.primary {
            None => {
                let group = bucket
                    .groups
                    .entry(key)
                    .or_insert_with(|| Group::Flat(Vec::new()));
                let Group::Flat(entries) = group else {
                    unreachable!("flat bucket holds flat groups");
                };
                push_sorted(entries, entry);
            }
            Some(field) => {
                let Some(Pattern::Prefix(prefix)) = m.get(field) else {
                    unreachable!("signature promised prefix pattern on {field}");
                };
                let group = bucket
                    .groups
                    .entry(key)
                    .or_insert_with(|| Group::Trie(PrefixTrie::new()));
                let Group::Trie(trie) = group else {
                    unreachable!("prefix bucket holds trie groups");
                };
                match trie.get_mut(prefix) {
                    Some(entries) => push_sorted(entries, entry),
                    None => {
                        trie.insert(*prefix, vec![entry]);
                    }
                }
            }
        }
        bucket.max_priority = bucket.max_priority.max(priority);
        bucket.rules += 1;
        let buckets = &self.buckets;
        self.order
            .sort_by(|&a, &b| buckets[b].max_priority.cmp(&buckets[a].max_priority));
    }

    /// The best `(priority, seq)` candidate matching `pkt`, if any rule
    /// does. Probes buckets highest-ceiling first and stops as soon as the
    /// running best outranks every remaining ceiling; a bucket whose
    /// ceiling *equals* the running best must still be probed — it may hold
    /// an equal-priority rule installed earlier.
    pub(crate) fn lookup(&self, pkt: &Packet) -> Option<(u32, u64)> {
        let mut best: Option<(u32, u64)> = None;
        for &bi in &self.order {
            let bucket = &self.buckets[bi];
            if let Some((p, _)) = best {
                if bucket.max_priority < p {
                    break;
                }
            }
            if let Some(candidate) = bucket.lookup(pkt) {
                if best.map(|b| better(candidate, b)).unwrap_or(true) {
                    best = Some(candidate);
                }
            }
        }
        best
    }

    /// Size counters.
    pub(crate) fn stats(&self) -> IndexStats {
        IndexStats {
            buckets: self.buckets.len(),
            groups: self.buckets.iter().map(|b| b.groups.len()).sum(),
            rules: self.buckets.iter().map(|b| b.rules).sum(),
        }
    }
}
