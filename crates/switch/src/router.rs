//! A participant's BGP border router, modelled at the forwarding level.
//!
//! This is stage one of the paper's multi-stage FIB (§4.2, Figure 2): the
//! router's own forwarding table maps destination prefixes to BGP next-hop
//! IPs. Because the SDX route server advertises *virtual* next hops, the
//! router's ordinary BGP/ARP machinery ends up tagging packets with the VMAC
//! for the destination's forwarding equivalence class — "without any
//! additional table space" and with unmodified routers.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sdx_ip::{MacAddr, Prefix, PrefixTrie};
use sdx_policy::{Field, Packet};

use crate::arp::{ArpReply, ArpRequest, ETHTYPE_IPV4};

/// The border router's forwarding state.
#[derive(Debug, Clone)]
pub struct BorderRouter {
    /// The router's MAC on its IXP-facing interface.
    mac: MacAddr,
    /// The router's IP on the IXP peering LAN.
    ip: Ipv4Addr,
    /// The SDX fabric port the router is attached to.
    port: u32,
    /// FIB: destination prefix → BGP next-hop IP (a VNH at an SDX).
    fib: PrefixTrie<Ipv4Addr>,
    /// ARP cache: next-hop IP → MAC (a VMAC at an SDX).
    arp_cache: BTreeMap<Ipv4Addr, MacAddr>,
}

/// What the router does with an outbound packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Forward {
    /// Frame ready to enter the SDX fabric on the router's port.
    Frame(Packet),
    /// The next hop's MAC is unknown; the router must ARP for it first.
    NeedArp(ArpRequest),
    /// No route for the destination.
    NoRoute,
}

impl BorderRouter {
    /// A router attached to fabric port `port`.
    pub fn new(port: u32, mac: MacAddr, ip: Ipv4Addr) -> Self {
        BorderRouter {
            mac,
            ip,
            port,
            fib: PrefixTrie::new(),
            arp_cache: BTreeMap::new(),
        }
    }

    /// The router's fabric port.
    pub fn port(&self) -> u32 {
        self.port
    }

    /// The router's interface MAC.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The router's peering-LAN IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Install (or replace) a route: what happens when BGP selects a best
    /// path whose NEXT_HOP is `next_hop`.
    pub fn install_route(&mut self, prefix: Prefix, next_hop: Ipv4Addr) {
        self.fib.insert(prefix, next_hop);
    }

    /// Remove a route (withdrawal with no replacement).
    pub fn remove_route(&mut self, prefix: &Prefix) -> Option<Ipv4Addr> {
        self.fib.remove(prefix)
    }

    /// Number of FIB entries.
    pub fn fib_len(&self) -> usize {
        self.fib.len()
    }

    /// The next hop the FIB currently selects for an address.
    pub fn next_hop_for(&self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        self.fib.longest_match(dst).map(|(_, nh)| *nh)
    }

    /// Iterate over the FIB: `(prefix, next hop)` in lexicographic order.
    /// The whole-fabric verifier reads the router's real forwarding state
    /// through this instead of re-deriving it from BGP.
    pub fn routes(&self) -> impl Iterator<Item = (Prefix, Ipv4Addr)> + '_ {
        self.fib.iter().map(|(p, nh)| (p, *nh))
    }

    /// The cached MAC for a next-hop IP, if the router has resolved it.
    pub fn arp_lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.arp_cache.get(&ip).copied()
    }

    /// Learn an ARP binding (from a reply or gratuitous ARP).
    pub fn learn_arp(&mut self, reply: &ArpReply) {
        self.arp_cache.insert(reply.sender_ip, reply.sender_mac);
    }

    /// Forget an ARP binding (cache expiry).
    pub fn expire_arp(&mut self, ip: &Ipv4Addr) {
        self.arp_cache.remove(ip);
    }

    /// Forward an IP packet: longest-prefix match, resolve the next hop's
    /// MAC, and emit the frame onto the fabric port with the destination MAC
    /// set — at an SDX, that destination MAC is the FEC's VMAC tag.
    pub fn forward(&self, mut pkt: Packet) -> Forward {
        let Some(dst) = pkt.dst_ip() else {
            return Forward::NoRoute;
        };
        let Some(next_hop) = self.next_hop_for(dst) else {
            return Forward::NoRoute;
        };
        let Some(nh_mac) = self.arp_cache.get(&next_hop) else {
            return Forward::NeedArp(ArpRequest {
                sender_mac: self.mac,
                sender_ip: self.ip,
                target_ip: next_hop,
            });
        };
        pkt.set(Field::Port, self.port);
        pkt.set(Field::EthType, ETHTYPE_IPV4);
        pkt.set(Field::SrcMac, self.mac);
        pkt.set(Field::DstMac, *nh_mac);
        Forward::Frame(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> BorderRouter {
        BorderRouter::new(1, MacAddr::from_u64(0xa1), Ipv4Addr::new(172, 0, 0, 1))
    }

    fn ip_pkt(dst: &str) -> Packet {
        Packet::new()
            .with(Field::DstIp, dst.parse::<Ipv4Addr>().unwrap())
            .with(Field::DstPort, 80u16)
    }

    fn reply(ip: &str, mac: u64) -> ArpReply {
        ArpReply {
            sender_mac: MacAddr::from_u64(mac),
            sender_ip: ip.parse().unwrap(),
            target_mac: MacAddr::from_u64(0xa1),
            target_ip: Ipv4Addr::new(172, 0, 0, 1),
        }
    }

    #[test]
    fn no_route_without_fib_entry() {
        let r = router();
        assert_eq!(r.forward(ip_pkt("10.0.0.1")), Forward::NoRoute);
    }

    #[test]
    fn needs_arp_before_first_frame() {
        let mut r = router();
        r.install_route("10.0.0.0/8".parse().unwrap(), "172.16.0.5".parse().unwrap());
        match r.forward(ip_pkt("10.0.0.1")) {
            Forward::NeedArp(req) => {
                assert_eq!(req.target_ip, "172.16.0.5".parse::<Ipv4Addr>().unwrap());
                assert_eq!(req.sender_mac, r.mac());
            }
            other => panic!("expected NeedArp, got {other:?}"),
        }
    }

    #[test]
    fn frames_carry_vmac_after_arp() {
        let mut r = router();
        r.install_route("10.0.0.0/8".parse().unwrap(), "172.16.0.5".parse().unwrap());
        r.learn_arp(&reply("172.16.0.5", 0x0200_0000_0007));
        match r.forward(ip_pkt("10.0.0.1")) {
            Forward::Frame(f) => {
                assert_eq!(f.dst_mac(), Some(MacAddr::from_u64(0x0200_0000_0007)));
                assert_eq!(f.src_mac(), Some(r.mac()));
                assert_eq!(f.port(), Some(1));
            }
            other => panic!("expected Frame, got {other:?}"),
        }
    }

    #[test]
    fn longest_prefix_match_selects_specific_route() {
        let mut r = router();
        r.install_route("10.0.0.0/8".parse().unwrap(), "172.16.0.1".parse().unwrap());
        r.install_route(
            "10.1.0.0/16".parse().unwrap(),
            "172.16.0.2".parse().unwrap(),
        );
        assert_eq!(
            r.next_hop_for("10.1.2.3".parse().unwrap()),
            Some("172.16.0.2".parse().unwrap())
        );
        assert_eq!(
            r.next_hop_for("10.2.0.1".parse().unwrap()),
            Some("172.16.0.1".parse().unwrap())
        );
    }

    #[test]
    fn next_hop_change_rebinds_vmac() {
        // A BGP update changing the VNH makes subsequent packets carry the
        // new VMAC — the control-plane signalling trick of §4.2.
        let mut r = router();
        r.install_route("10.0.0.0/8".parse().unwrap(), "172.16.0.1".parse().unwrap());
        r.learn_arp(&reply("172.16.0.1", 1));
        r.learn_arp(&reply("172.16.0.2", 2));
        r.install_route("10.0.0.0/8".parse().unwrap(), "172.16.0.2".parse().unwrap());
        match r.forward(ip_pkt("10.0.0.1")) {
            Forward::Frame(f) => assert_eq!(f.dst_mac(), Some(MacAddr::from_u64(2))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn routes_and_arp_are_observable() {
        let mut r = router();
        r.install_route("10.0.0.0/8".parse().unwrap(), "172.16.0.5".parse().unwrap());
        r.install_route("20.0.0.0/8".parse().unwrap(), "172.16.0.6".parse().unwrap());
        r.learn_arp(&reply("172.16.0.5", 0x42));
        let routes: Vec<_> = r.routes().collect();
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].0, "10.0.0.0/8".parse().unwrap());
        assert_eq!(
            r.arp_lookup("172.16.0.5".parse().unwrap()),
            Some(MacAddr::from_u64(0x42))
        );
        assert_eq!(r.arp_lookup("172.16.0.6".parse().unwrap()), None);
    }

    #[test]
    fn route_removal_and_arp_expiry() {
        let mut r = router();
        r.install_route("10.0.0.0/8".parse().unwrap(), "172.16.0.1".parse().unwrap());
        r.learn_arp(&reply("172.16.0.1", 1));
        r.expire_arp(&"172.16.0.1".parse().unwrap());
        assert!(matches!(r.forward(ip_pkt("10.0.0.1")), Forward::NeedArp(_)));
        r.remove_route(&"10.0.0.0/8".parse().unwrap());
        assert_eq!(r.forward(ip_pkt("10.0.0.1")), Forward::NoRoute);
        assert_eq!(r.fib_len(), 0);
    }
}
