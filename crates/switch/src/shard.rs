//! RSS-style sharded data plane: hash each packet's flow key to one of N
//! per-core shards, each processing its slice of the batch against a
//! read-only snapshot of the pipeline with shard-local counters, then fold
//! counters and stats back into the master switch.
//!
//! Correctness model:
//!
//! * **Any shard can process any packet.** Every shard sees the *full*
//!   pipeline snapshot; the flow hash is purely a load-distribution and
//!   counter-cache-affinity decision, so forwarding output is independent of
//!   the shard count (the property test `shard_prop.rs` proves it).
//! * **Lookups never lock.** Mutations go through the single writer
//!   ([`ShardedSwitch::master_mut`]); the master's `generation` counter is
//!   bumped by every mutating accessor, and the next batch republishes a
//!   fresh [`Snapshot`] (an `Arc`'d clone of the tables) iff the generation
//!   moved — an arc-swap-style epoch scheme without per-packet
//!   synchronization.
//! * **Counters aggregate on read.** Shards bump plain `u64` delta arrays
//!   (no atomics on the hot path); after the batch the deltas fold into the
//!   master tables' counters via [`FlowTable::add_hits`]. Because the whole
//!   batch runs under `&mut self`, no mutation can interleave between
//!   publish and fold, so rule positions in the snapshot and the master
//!   always align and `packet_count` / `total_hits` keep their existing
//!   semantics.
//!
//! Steady state the batch path is allocation-free: per-shard scratch
//! (assignment lists, delta arrays, emission arenas) is reused across
//! batches, and the flat [`Packet`] representation clones without touching
//! the heap.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdx_policy::Packet;

use crate::switch::pipeline_walk;
use crate::{BatchOutput, FlowTable, SoftSwitch, SwitchStats};

/// Deterministic flow-key hash: FNV-1a over the packet's present
/// `(field, value)` pairs (in-port, eth addresses/type, and the 5-tuple —
/// every field the match signatures can key on), finished with a splitmix64
/// avalanche so the low bits used for `hash % shards` are well mixed even
/// for near-identical flows.
pub fn flow_hash(pkt: &Packet) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for (field, value) in pkt.iter() {
        h ^= *field as u64 + 1;
        h = h.wrapping_mul(PRIME);
        h ^= *value;
        h = h.wrapping_mul(PRIME);
    }
    // splitmix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// An immutable published view of the master pipeline: what shards look
/// packets up against. Cloned from the master once per mutation epoch, never
/// mutated afterwards.
#[derive(Debug)]
struct Snapshot {
    ports: BTreeSet<u32>,
    tables: Vec<FlowTable>,
    linear: bool,
}

/// One per-core execution context: the packets assigned to it this batch,
/// its own emission arena, stats, and rule-hit delta arrays. Everything here
/// is single-threaded plain data — no atomics, no locks.
#[derive(Debug, Default)]
struct Shard {
    /// Input-packet indices routed to this shard this batch.
    assigned: Vec<u32>,
    /// `[table][position]` rule-hit deltas, folded into the master after the
    /// batch.
    counters: Vec<Vec<u64>>,
    stats: SwitchStats,
    /// Pipeline-walk scratch.
    work: Vec<(usize, Packet)>,
    /// This shard's emissions, stitched back into input order afterwards.
    out: BatchOutput,
    /// Cumulative time this shard spent processing packets — the
    /// dedicated-core cost model the bench aggregates over.
    busy: Duration,
}

impl Shard {
    /// Run-to-completion over this shard's assigned packets.
    fn run(&mut self, snap: &Snapshot, pkts: &[Packet]) {
        let t0 = Instant::now();
        let Shard {
            assigned,
            counters,
            stats,
            work,
            out,
            ..
        } = self;
        out.clear();
        for &i in assigned.iter() {
            let start = out.emitted();
            pipeline_walk(
                &snap.ports,
                &snap.tables,
                snap.linear,
                &pkts[i as usize],
                stats,
                work,
                out.items_mut(),
                &mut |t, pos| counters[t][pos] += 1,
            );
            out.commit_span(start);
        }
        self.busy += t0.elapsed();
    }
}

/// A [`SoftSwitch`] sharded RSS-style across N per-core shards.
///
/// All mutation (rule install/remove/append, port add, pipeline reset) goes
/// through the single writer via [`master_mut`](Self::master_mut); batch
/// processing fans packets out to shards by flow hash and folds counters
/// back, preserving the master's observable semantics exactly. With
/// `threads == 1` the batch path degenerates to the master's own zero-alloc
/// loop — no snapshot, no routing.
#[derive(Debug)]
pub struct ShardedSwitch {
    master: SoftSwitch,
    threads: usize,
    shards: Vec<Shard>,
    snap: Option<Arc<Snapshot>>,
    /// `master.generation()` at publish time.
    epoch: u64,
    /// Shard index per input packet (stitch scratch).
    route: Vec<u32>,
    /// Per-shard read cursor (stitch scratch).
    cursor: Vec<u32>,
}

impl Default for ShardedSwitch {
    fn default() -> Self {
        ShardedSwitch::new(SoftSwitch::default(), 1)
    }
}

impl ShardedSwitch {
    /// Wrap `master` with `threads` shards (0 is clamped to 1).
    pub fn new(master: SoftSwitch, threads: usize) -> Self {
        ShardedSwitch {
            master,
            threads: threads.max(1),
            shards: Vec::new(),
            snap: None,
            epoch: 0,
            route: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// The authoritative switch: all reads of tables, counters, stats, and
    /// index statistics go here.
    pub fn master(&self) -> &SoftSwitch {
        &self.master
    }

    /// The single writer: every mutation bumps the master's generation, so
    /// the next batch republishes the snapshot.
    pub fn master_mut(&mut self) -> &mut SoftSwitch {
        &mut self.master
    }

    /// Current shard count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Change the shard count (0 is clamped to 1). Takes effect on the next
    /// batch.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Aggregated stats (identical to the master's: shard deltas are folded
    /// in at the end of every batch).
    pub fn stats(&self) -> SwitchStats {
        self.master.stats()
    }

    /// Process one packet on the master (sharding is a batch concept).
    pub fn process(&mut self, pkt: &Packet) -> Vec<(u32, Packet)> {
        self.master.process(pkt)
    }

    /// Per-shard cumulative busy time since the last
    /// [`reset_shard_busy`](Self::reset_shard_busy) — the dedicated-core
    /// cost model: aggregate throughput is `packets / max(busy)`.
    pub fn shard_busy(&self) -> Vec<Duration> {
        self.shards.iter().map(|s| s.busy).collect()
    }

    /// Zero the per-shard busy clocks.
    pub fn reset_shard_busy(&mut self) {
        for s in &mut self.shards {
            s.busy = Duration::ZERO;
        }
    }

    /// Process a batch across the shards in parallel (vendored crossbeam
    /// fork-join scope), writing emissions grouped per input packet, in
    /// input order, into the reusable `out` arena. Semantically identical to
    /// the master's [`SoftSwitch::process_batch_into`].
    pub fn process_batch_into(&mut self, pkts: &[Packet], out: &mut BatchOutput) {
        if self.threads <= 1 {
            self.master.process_batch_into(pkts, out);
            return;
        }
        self.run_sharded(pkts, out, false);
    }

    /// Like [`process_batch_into`](Self::process_batch_into) but runs the
    /// shards sequentially on the calling thread, timing each shard's busy
    /// span. This is the measurement mode for per-shard cost on machines
    /// with fewer physical cores than shards (each shard's busy time is what
    /// a dedicated core would spend); output is identical to the parallel
    /// path.
    pub fn process_batch_serial_into(&mut self, pkts: &[Packet], out: &mut BatchOutput) {
        self.run_sharded(pkts, out, true);
    }

    /// Compatibility shape: one owned `Vec` per input packet.
    pub fn process_batch(&mut self, pkts: &[Packet]) -> Vec<Vec<(u32, Packet)>> {
        let mut out = BatchOutput::new();
        self.process_batch_into(pkts, &mut out);
        out.to_vecs()
    }

    /// Republish the snapshot if the master mutated since the last batch,
    /// and (re)size the shard set.
    fn ensure_published(&mut self) {
        let shards = self.threads.max(1);
        if self.shards.len() != shards {
            self.shards.clear();
            self.shards.resize_with(shards, Shard::default);
        }
        let generation = self.master.generation();
        if self.snap.is_none() || self.epoch != generation {
            self.snap = Some(Arc::new(Snapshot {
                ports: self.master.port_set().clone(),
                tables: self.master.tables().to_vec(),
                linear: self.master.linear_scan(),
            }));
            self.epoch = generation;
        }
    }

    fn run_sharded(&mut self, pkts: &[Packet], out: &mut BatchOutput, serial: bool) {
        self.ensure_published();
        let snap = Arc::clone(self.snap.as_ref().expect("published above"));
        let n = self.shards.len();

        // Route: flow-hash each packet to a shard.
        self.route.clear();
        for shard in &mut self.shards {
            shard.assigned.clear();
        }
        for (i, pkt) in pkts.iter().enumerate() {
            let s = (flow_hash(pkt) % n as u64) as usize;
            self.route.push(s as u32);
            self.shards[s].assigned.push(i as u32);
        }

        // Zero each shard's delta arrays to the snapshot's table shapes.
        for shard in &mut self.shards {
            shard.counters.resize_with(snap.tables.len(), Vec::new);
            for (deltas, table) in shard.counters.iter_mut().zip(snap.tables.iter()) {
                deltas.clear();
                deltas.resize(table.len(), 0);
            }
            shard.stats = SwitchStats::default();
        }

        // Execute: run-to-completion per shard.
        if serial || n == 1 {
            for shard in &mut self.shards {
                shard.run(&snap, pkts);
            }
        } else {
            let snap_ref: &Snapshot = &snap;
            crossbeam::pool::scope(n, |scope| {
                for shard in &mut self.shards {
                    scope.spawn(move || shard.run(snap_ref, pkts));
                }
            });
        }

        // Stitch: interleave shard arenas back into input order.
        out.clear();
        self.cursor.clear();
        self.cursor.resize(n, 0);
        for &s in &self.route {
            let c = &mut self.cursor[s as usize];
            out.push_span(self.shards[s as usize].out.packet(*c as usize));
            *c += 1;
        }

        // Fold: shard deltas into the master's counters and stats. Positions
        // align with the snapshot because nothing mutated the master since
        // `ensure_published` (the whole batch runs under `&mut self`).
        let ShardedSwitch { master, shards, .. } = self;
        for shard in shards.iter() {
            master.merge_stats(shard.stats);
            for (t, deltas) in shard.counters.iter().enumerate() {
                let table = master.table_at(t).expect("snapshot table shape");
                for (pos, &n) in deltas.iter().enumerate() {
                    if n > 0 {
                        table.add_hits(pos, n);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{fwd, match_, Field};
    use std::net::Ipv4Addr;

    fn policy_switch() -> SoftSwitch {
        let mut sw = SoftSwitch::new([1, 2, 3]);
        let policy = (match_(Field::DstPort, 80u16) >> fwd(2))
            + (match_(Field::DstPort, 443u16) >> (fwd(2) + fwd(3)));
        sw.install_classifier(&policy.compile(), 1);
        sw
    }

    fn traffic(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::tcp(
                    1 + (i % 4) as u32, // port 4 does not exist → bad ingress
                    Ipv4Addr::from(0x0a00_0000 + i as u32),
                    Ipv4Addr::new(20, 0, 0, 1),
                    (1024 + i) as u16,
                    if i % 3 == 0 { 443 } else { 80 + (i % 2) as u16 },
                )
            })
            .collect()
    }

    #[test]
    fn flow_hash_is_deterministic_and_spreads() {
        let pkts = traffic(256);
        let mut buckets = [0usize; 4];
        for p in &pkts {
            assert_eq!(flow_hash(p), flow_hash(&p.clone()));
            buckets[(flow_hash(p) % 4) as usize] += 1;
        }
        // Every shard gets a meaningful share of 256 distinct flows.
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 256 / 16, "shard {i} starved: {buckets:?}");
        }
    }

    #[test]
    fn sharded_output_matches_single_shard_in_order() {
        let pkts = traffic(200);
        let oracle = {
            let mut sw = policy_switch();
            sw.process_batch(&pkts)
        };
        for threads in [1usize, 2, 4, 8] {
            let mut sharded = ShardedSwitch::new(policy_switch(), threads);
            assert_eq!(sharded.process_batch(&pkts), oracle, "threads={threads}");
        }
    }

    #[test]
    fn counters_and_stats_fold_exactly() {
        let pkts = traffic(300);
        let mut oracle = policy_switch();
        let oracle_out = oracle.process_batch(&pkts);
        let oracle_hits: Vec<u64> = (0..oracle.table().len())
            .map(|i| oracle.table().packet_count(i))
            .collect();

        let mut sharded = ShardedSwitch::new(policy_switch(), 4);
        let out = sharded.process_batch(&pkts);
        assert_eq!(out, oracle_out);
        assert_eq!(sharded.stats(), oracle.stats());
        let hits: Vec<u64> = (0..sharded.master().table().len())
            .map(|i| sharded.master().table().packet_count(i))
            .collect();
        assert_eq!(hits, oracle_hits);
    }

    #[test]
    fn serial_mode_matches_parallel_and_times_shards() {
        let pkts = traffic(128);
        let mut parallel = ShardedSwitch::new(policy_switch(), 4);
        let mut serial = ShardedSwitch::new(policy_switch(), 4);
        let mut a = BatchOutput::new();
        let mut b = BatchOutput::new();
        parallel.process_batch_into(&pkts, &mut a);
        serial.process_batch_serial_into(&pkts, &mut b);
        assert_eq!(a.to_vecs(), b.to_vecs());
        assert_eq!(parallel.stats(), serial.stats());
        let busy = serial.shard_busy();
        assert_eq!(busy.len(), 4);
        assert!(busy.iter().any(|d| *d > Duration::ZERO));
        serial.reset_shard_busy();
        assert!(serial.shard_busy().iter().all(|d| *d == Duration::ZERO));
    }

    #[test]
    fn epoch_republish_sees_new_rules() {
        let pkts = traffic(64);
        let mut sharded = ShardedSwitch::new(SoftSwitch::new([1, 2, 3, 4]), 2);
        // First batch: empty table, everything received is dropped.
        let out = sharded.process_batch(&pkts);
        assert!(out.iter().all(|v| v.is_empty()));
        // Mutate through the writer; next batch must observe the rules.
        sharded
            .master_mut()
            .install_classifier(&(match_(Field::DstPort, 80u16) >> fwd(2)).compile(), 1);
        let out = sharded.process_batch(&pkts);
        assert!(out.iter().any(|v| !v.is_empty()));
        // And the oracle agrees.
        let mut oracle = SoftSwitch::new([1, 2, 3, 4]);
        let _ = oracle.process_batch(&pkts);
        oracle.install_classifier(&(match_(Field::DstPort, 80u16) >> fwd(2)).compile(), 1);
        assert_eq!(out, oracle.process_batch(&pkts));
    }

    #[test]
    fn changing_thread_count_mid_stream_is_transparent() {
        let pkts = traffic(96);
        let mut oracle = policy_switch();
        let mut sharded = ShardedSwitch::new(policy_switch(), 1);
        for threads in [2usize, 8, 1, 4] {
            sharded.set_threads(threads);
            assert_eq!(sharded.threads(), threads);
            assert_eq!(sharded.process_batch(&pkts), oracle.process_batch(&pkts));
        }
        assert_eq!(sharded.stats(), oracle.stats());
    }
}
