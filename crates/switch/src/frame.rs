//! Byte-level frame codec: Ethernet II, ARP, IPv4, TCP and UDP headers.
//!
//! The policy layer works on header-field maps ([`Packet`]); this module
//! converts those located packets to and from real wire bytes, so the
//! software data plane can ingest pcap-style frames and emit frames a real
//! NIC would accept. IPv4 header checksums are generated and validated.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sdx_ip::MacAddr;
use sdx_policy::{Field, Packet};

use crate::arp::{ETHTYPE_ARP, ETHTYPE_IPV4};

/// Frame encoding/decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A header field required for this frame type is missing.
    MissingField(Field),
    /// The bytes are shorter than the headers claim.
    Truncated,
    /// The EtherType is not one this codec understands.
    UnsupportedEtherType(u16),
    /// The IP protocol is not TCP or UDP.
    UnsupportedProtocol(u8),
    /// The IPv4 header checksum does not verify.
    BadChecksum,
    /// The IPv4 header had an unsupported version or length.
    BadIpHeader,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::MissingField(field) => write!(f, "missing field {field}"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            FrameError::UnsupportedProtocol(p) => write!(f, "unsupported ip protocol {p}"),
            FrameError::BadChecksum => write!(f, "bad IPv4 header checksum"),
            FrameError::BadIpHeader => write!(f, "bad IPv4 header"),
        }
    }
}

impl std::error::Error for FrameError {}

fn need(pkt: &Packet, field: Field) -> Result<u64, FrameError> {
    pkt.get(field).ok_or(FrameError::MissingField(field))
}

/// RFC 1071 Internet checksum over a header.
fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encode a located packet (plus payload) as an Ethernet frame.
///
/// Supports ARP frames (fields: MACs + Src/DstIp) and IPv4 with TCP or UDP
/// (fields: MACs, IPs, IpProto, ports). The `Port` location field is not
/// encoded — it exists only inside the fabric.
pub fn encode_frame(pkt: &Packet, payload: &[u8]) -> Result<Bytes, FrameError> {
    let dst_mac = MacAddr::from_u64(need(pkt, Field::DstMac)?);
    let src_mac = MacAddr::from_u64(need(pkt, Field::SrcMac)?);
    let ethtype = need(pkt, Field::EthType)? as u16;

    let mut out = BytesMut::with_capacity(64 + payload.len());
    out.put_slice(&dst_mac.0);
    out.put_slice(&src_mac.0);
    out.put_u16(ethtype);

    match ethtype {
        ETHTYPE_ARP => {
            // Hardware type Ethernet, protocol IPv4, request opcode.
            out.put_u16(1);
            out.put_u16(ETHTYPE_IPV4);
            out.put_u8(6);
            out.put_u8(4);
            out.put_u16(1); // opcode: request (replies are modeled in-process)
            out.put_slice(&src_mac.0);
            out.put_u32(need(pkt, Field::SrcIp)? as u32);
            out.put_slice(&[0u8; 6]); // target MAC unknown
            out.put_u32(need(pkt, Field::DstIp)? as u32);
        }
        ETHTYPE_IPV4 => {
            let proto = need(pkt, Field::IpProto)? as u8;
            let transport_len = match proto {
                6 => 20,
                17 => 8,
                other => return Err(FrameError::UnsupportedProtocol(other)),
            };
            let total_len = 20 + transport_len + payload.len();

            let mut ip = BytesMut::with_capacity(20);
            ip.put_u8(0x45); // version 4, IHL 5
            ip.put_u8(0); // DSCP/ECN
            ip.put_u16(total_len as u16);
            ip.put_u32(0); // id, flags, fragment offset
            ip.put_u8(64); // TTL
            ip.put_u8(proto);
            ip.put_u16(0); // checksum placeholder
            ip.put_u32(need(pkt, Field::SrcIp)? as u32);
            ip.put_u32(need(pkt, Field::DstIp)? as u32);
            let csum = internet_checksum(&ip);
            ip[10..12].copy_from_slice(&csum.to_be_bytes());
            out.put_slice(&ip);

            let src_port = need(pkt, Field::SrcPort)? as u16;
            let dst_port = need(pkt, Field::DstPort)? as u16;
            match proto {
                17 => {
                    out.put_u16(src_port);
                    out.put_u16(dst_port);
                    out.put_u16((8 + payload.len()) as u16);
                    out.put_u16(0); // UDP checksum optional over IPv4
                }
                6 => {
                    out.put_u16(src_port);
                    out.put_u16(dst_port);
                    out.put_u32(0); // seq
                    out.put_u32(0); // ack
                    out.put_u8(5 << 4); // data offset 5 words
                    out.put_u8(0x18); // PSH|ACK
                    out.put_u16(0xffff); // window
                    out.put_u16(0); // checksum (not computed; see docs)
                    out.put_u16(0); // urgent
                }
                _ => unreachable!("validated above"),
            }
            out.put_slice(payload);
        }
        other => return Err(FrameError::UnsupportedEtherType(other)),
    }
    Ok(out.freeze())
}

/// Decode an Ethernet frame into a located packet (without a `Port`; the
/// caller sets the ingress) and its payload bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<(Packet, Bytes), FrameError> {
    if bytes.len() < 14 {
        return Err(FrameError::Truncated);
    }
    let mut buf = bytes;
    let mut dst = [0u8; 6];
    let mut src = [0u8; 6];
    buf.copy_to_slice(&mut dst);
    buf.copy_to_slice(&mut src);
    let ethtype = buf.get_u16();

    let mut pkt = Packet::new()
        .with(Field::DstMac, MacAddr(dst))
        .with(Field::SrcMac, MacAddr(src))
        .with(Field::EthType, ethtype);

    match ethtype {
        ETHTYPE_ARP => {
            if buf.len() < 28 {
                return Err(FrameError::Truncated);
            }
            buf.advance(8); // htype/ptype/hlen/plen/opcode — fixed by encoder
            buf.advance(6); // sender MAC (already in the Ethernet header)
            let sender_ip = buf.get_u32();
            buf.advance(6); // target MAC
            let target_ip = buf.get_u32();
            pkt.set(Field::SrcIp, sender_ip);
            pkt.set(Field::DstIp, target_ip);
            Ok((pkt, Bytes::new()))
        }
        ETHTYPE_IPV4 => {
            if buf.len() < 20 {
                return Err(FrameError::Truncated);
            }
            let vihl = buf[0];
            if vihl >> 4 != 4 {
                return Err(FrameError::BadIpHeader);
            }
            let ihl = ((vihl & 0x0f) as usize) * 4;
            if ihl < 20 || buf.len() < ihl {
                return Err(FrameError::BadIpHeader);
            }
            if internet_checksum(&buf[..ihl]) != 0 {
                return Err(FrameError::BadChecksum);
            }
            let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
            if total_len < ihl || buf.len() < total_len {
                return Err(FrameError::Truncated);
            }
            let proto = buf[9];
            let src_ip = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]);
            let dst_ip = u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]);
            pkt.set(Field::IpProto, proto);
            pkt.set(Field::SrcIp, src_ip);
            pkt.set(Field::DstIp, dst_ip);

            let mut transport = &buf[ihl..total_len];
            let header_len = match proto {
                17 => 8,
                6 => {
                    if transport.len() < 20 {
                        return Err(FrameError::Truncated);
                    }
                    (((transport[12] >> 4) as usize) * 4).max(20)
                }
                other => return Err(FrameError::UnsupportedProtocol(other)),
            };
            if transport.len() < header_len {
                return Err(FrameError::Truncated);
            }
            pkt.set(Field::SrcPort, transport.get_u16());
            pkt.set(Field::DstPort, transport.get_u16());
            let payload = &bytes[14 + ihl + header_len..14 + total_len];
            Ok((pkt, Bytes::copy_from_slice(payload)))
        }
        other => Err(FrameError::UnsupportedEtherType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn udp_packet() -> Packet {
        Packet::udp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 2),
            4242,
            53,
        )
        .with(Field::SrcMac, MacAddr::from_u64(0xa1))
        .with(Field::DstMac, MacAddr::from_u64(0xb2))
    }

    #[test]
    fn udp_round_trip_with_payload() {
        let pkt = udp_packet();
        let wire = encode_frame(&pkt, b"hello sdx").unwrap();
        let (decoded, payload) = decode_frame(&wire).unwrap();
        assert_eq!(payload.as_ref(), b"hello sdx");
        for field in [
            Field::SrcMac,
            Field::DstMac,
            Field::EthType,
            Field::IpProto,
            Field::SrcIp,
            Field::DstIp,
            Field::SrcPort,
            Field::DstPort,
        ] {
            assert_eq!(decoded.get(field), pkt.get(field), "{field}");
        }
        // The location field is never on the wire.
        assert_eq!(decoded.get(Field::Port), None);
    }

    #[test]
    fn tcp_round_trip() {
        let pkt = udp_packet().with(Field::IpProto, 6u8);
        let wire = encode_frame(&pkt, b"GET /").unwrap();
        let (decoded, payload) = decode_frame(&wire).unwrap();
        assert_eq!(decoded.get(Field::IpProto), Some(6));
        assert_eq!(decoded.get(Field::DstPort), Some(53));
        assert_eq!(payload.as_ref(), b"GET /");
    }

    #[test]
    fn arp_round_trip() {
        let pkt = Packet::new()
            .with(Field::EthType, ETHTYPE_ARP)
            .with(Field::SrcMac, MacAddr::from_u64(0xa1))
            .with(Field::DstMac, MacAddr::BROADCAST)
            .with(Field::SrcIp, Ipv4Addr::new(172, 0, 0, 1))
            .with(Field::DstIp, Ipv4Addr::new(172, 16, 0, 5));
        let wire = encode_frame(&pkt, &[]).unwrap();
        let (decoded, _) = decode_frame(&wire).unwrap();
        assert_eq!(decoded.dst_ip(), Some(Ipv4Addr::new(172, 16, 0, 5)));
        assert_eq!(decoded.src_ip(), Some(Ipv4Addr::new(172, 0, 0, 1)));
        assert_eq!(decoded.dst_mac(), Some(MacAddr::BROADCAST));
    }

    #[test]
    fn missing_fields_rejected() {
        let pkt = Packet::new().with(Field::EthType, ETHTYPE_IPV4);
        assert!(matches!(
            encode_frame(&pkt, &[]),
            Err(FrameError::MissingField(_))
        ));
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let wire = encode_frame(&udp_packet(), b"x").unwrap();
        let mut bad = wire.to_vec();
        bad[14 + 12] ^= 0xff; // flip a source-IP byte: checksum now wrong
        assert_eq!(decode_frame(&bad).unwrap_err(), FrameError::BadChecksum);
    }

    #[test]
    fn truncation_rejected_not_panicking() {
        let wire = encode_frame(&udp_packet(), b"payload").unwrap();
        for cut in 0..wire.len() {
            let _ = decode_frame(&wire[..cut]); // must not panic
        }
    }

    #[test]
    fn unsupported_ethertype_rejected() {
        let pkt = udp_packet().with(Field::EthType, 0x86ddu16); // IPv6
        assert_eq!(
            encode_frame(&pkt, &[]).unwrap_err(),
            FrameError::UnsupportedEtherType(0x86dd)
        );
    }

    #[test]
    fn checksum_is_valid_per_rfc1071() {
        let wire = encode_frame(&udp_packet(), &[]).unwrap();
        // Recomputing over the IP header (bytes 14..34) must give zero.
        assert_eq!(internet_checksum(&wire[14..34]), 0);
    }
}
