//! Minimal libpcap-format capture writer/reader, the equivalent of the
//! paper's deployment tooling `--pcap` option: every frame the simulated
//! fabric sees can be dumped to a file Wireshark opens directly.
//!
//! Implements the classic pcap format (magic `0xa1b2c3d4`, version 2.4,
//! LINKTYPE_ETHERNET), microsecond timestamps.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Classic pcap magic (microsecond timestamps, native byte order written
/// big-endian here).
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// One captured frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedFrame {
    /// Seconds since the epoch (virtual time in simulations).
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// The frame bytes.
    pub data: Bytes,
}

/// An in-memory pcap capture being written.
#[derive(Debug, Clone)]
pub struct PcapWriter {
    buf: BytesMut,
    frames: usize,
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PcapWriter {
    /// Start a capture (writes the global header).
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(1024);
        buf.put_u32(MAGIC);
        buf.put_u16(2); // version major
        buf.put_u16(4); // version minor
        buf.put_i32(0); // thiszone
        buf.put_u32(0); // sigfigs
        buf.put_u32(65_535); // snaplen
        buf.put_u32(LINKTYPE_ETHERNET);
        PcapWriter { buf, frames: 0 }
    }

    /// Append a frame with a virtual timestamp.
    pub fn write_frame(&mut self, ts_sec: u32, ts_usec: u32, frame: &[u8]) {
        self.buf.put_u32(ts_sec);
        self.buf.put_u32(ts_usec);
        self.buf.put_u32(frame.len() as u32); // captured length
        self.buf.put_u32(frame.len() as u32); // original length
        self.buf.put_slice(frame);
        self.frames += 1;
    }

    /// Number of frames written.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The capture bytes (suitable for writing to a `.pcap` file).
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Pcap parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Too short or bad magic.
    BadHeader,
    /// A record header ran past the end of the capture.
    Truncated,
    /// The capture is not Ethernet.
    WrongLinkType(u32),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadHeader => write!(f, "not a pcap capture"),
            PcapError::Truncated => write!(f, "truncated pcap record"),
            PcapError::WrongLinkType(l) => write!(f, "unsupported link type {l}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Parse a classic pcap capture into its frames.
pub fn read_pcap(bytes: &[u8]) -> Result<Vec<CapturedFrame>, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::BadHeader);
    }
    let mut buf = bytes;
    if buf.get_u32() != MAGIC {
        return Err(PcapError::BadHeader);
    }
    buf.advance(4 + 4 + 4 + 4); // version, thiszone, sigfigs, snaplen
    let linktype = buf.get_u32();
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::WrongLinkType(linktype));
    }
    let mut frames = Vec::new();
    while !buf.is_empty() {
        if buf.len() < 16 {
            return Err(PcapError::Truncated);
        }
        let ts_sec = buf.get_u32();
        let ts_usec = buf.get_u32();
        let cap_len = buf.get_u32() as usize;
        buf.advance(4); // original length
        if buf.len() < cap_len {
            return Err(PcapError::Truncated);
        }
        frames.push(CapturedFrame {
            ts_sec,
            ts_usec,
            data: Bytes::copy_from_slice(&buf[..cap_len]),
        });
        buf.advance(cap_len);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use sdx_ip::MacAddr;
    use sdx_policy::{Field, Packet};
    use std::net::Ipv4Addr;

    fn sample_frame() -> Bytes {
        let pkt = Packet::udp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 2),
            1111,
            53,
        )
        .with(Field::SrcMac, MacAddr::from_u64(1))
        .with(Field::DstMac, MacAddr::from_u64(2));
        encode_frame(&pkt, b"dns?").unwrap()
    }

    #[test]
    fn empty_capture_round_trips() {
        let w = PcapWriter::new();
        assert_eq!(w.frames(), 0);
        let frames = read_pcap(&w.finish()).unwrap();
        assert!(frames.is_empty());
    }

    #[test]
    fn frames_round_trip_with_timestamps() {
        let mut w = PcapWriter::new();
        let f1 = sample_frame();
        w.write_frame(100, 5, &f1);
        w.write_frame(101, 250_000, &f1);
        assert_eq!(w.frames(), 2);
        let frames = read_pcap(&w.finish()).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].ts_sec, 100);
        assert_eq!(frames[1].ts_usec, 250_000);
        assert_eq!(frames[0].data, f1);
        // The captured frame decodes back to the packet.
        let (decoded, payload) = crate::frame::decode_frame(&frames[0].data).unwrap();
        assert_eq!(decoded.get(Field::DstPort), Some(53));
        assert_eq!(payload.as_ref(), b"dns?");
    }

    #[test]
    fn bad_input_rejected() {
        assert_eq!(read_pcap(b"short").unwrap_err(), PcapError::BadHeader);
        let mut w = PcapWriter::new();
        w.write_frame(1, 1, &sample_frame());
        let bytes = w.finish();
        assert_eq!(
            read_pcap(&bytes[..bytes.len() - 3]).unwrap_err(),
            PcapError::Truncated
        );
        let mut garbled = bytes.to_vec();
        garbled[0] = 0;
        assert_eq!(read_pcap(&garbled).unwrap_err(), PcapError::BadHeader);
    }
}
