//! Property tests for the data-plane crate: frame codec round-trips and
//! flow-table priority semantics.

use proptest::prelude::*;
use sdx_ip::MacAddr;
use sdx_policy::{Field, Match, Packet, Pattern};
use sdx_switch::{decode_frame, encode_frame, FlowRule, FlowTable};

fn arb_ipv4_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(6u8), Just(17u8)],
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(src, dst, sport, dport, proto, smac, dmac)| {
            Packet::new()
                .with(Field::EthType, 0x0800u16)
                .with(Field::IpProto, proto)
                .with(Field::SrcIp, src)
                .with(Field::DstIp, dst)
                .with(Field::SrcPort, sport)
                .with(Field::DstPort, dport)
                .with(Field::SrcMac, MacAddr::from_u64(smac & 0xffff_ffff_ffff))
                .with(Field::DstMac, MacAddr::from_u64(dmac & 0xffff_ffff_ffff))
        })
}

proptest! {
    #[test]
    fn frame_round_trip(pkt in arb_ipv4_packet(), payload in prop::collection::vec(any::<u8>(), 0..200)) {
        let wire = encode_frame(&pkt, &payload).unwrap();
        let (decoded, got_payload) = decode_frame(&wire).unwrap();
        prop_assert_eq!(got_payload.as_ref(), payload.as_slice());
        for field in [
            Field::SrcMac, Field::DstMac, Field::EthType, Field::IpProto,
            Field::SrcIp, Field::DstIp, Field::SrcPort, Field::DstPort,
        ] {
            prop_assert_eq!(decoded.get(field), pkt.get(field));
        }
    }

    #[test]
    fn frame_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..120)) {
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn frame_corruption_never_panics(pkt in arb_ipv4_packet(), idx in any::<prop::sample::Index>(), b in any::<u8>()) {
        let wire = encode_frame(&pkt, b"payload").unwrap();
        let mut bad = wire.to_vec();
        let i = idx.index(bad.len());
        bad[i] = b;
        let _ = decode_frame(&bad);
    }

    /// The flow table picks the highest-priority matching rule, matching a
    /// brute-force oracle.
    #[test]
    fn flow_table_matches_priority_oracle(
        rules in prop::collection::vec((0u32..8, 0u64..4, any::<bool>()), 1..20),
        probe in 0u64..4,
    ) {
        let mut table = FlowTable::new();
        let mut model: Vec<(u32, Option<u64>, usize)> = Vec::new();
        for (i, (prio, port_val, wildcard)) in rules.iter().enumerate() {
            let match_ = if *wildcard {
                Match::any()
            } else {
                Match::on(Field::Port, Pattern::Exact(*port_val))
            };
            table.install(
                FlowRule::new(*prio, match_, vec![])
                    .with_cookie(i as u64),
            );
            model.push((*prio, (!*wildcard).then_some(*port_val), i));
        }
        let pkt = Packet::new().with(Field::Port, probe as u32);
        let got = table.peek(&pkt).map(|r| r.cookie);
        // Oracle: among matching rules, highest priority; ties broken by
        // insertion order.
        let want = model
            .iter()
            .filter(|(_, pv, _)| pv.map(|v| v == probe).unwrap_or(true))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.2.cmp(&a.2)))
            .map(|(_, _, i)| *i as u64);
        prop_assert_eq!(got, want);
    }
}
