//! Property test for the RSS-sharded data plane: for every shard count
//! N ∈ {1, 2, 4, 8}, the sharded switch's batch output (in input order —
//! strictly stronger than multiset equality), stats, and per-rule packet
//! counters must be bit-identical to the single-shard oracle under a
//! randomized churn of installs, overlay appends, cookie removals,
//! delta-plan mutations (in-band installs above the current ceiling and
//! content-based `remove_matching` retirements, the churn engine's rule
//! vocabulary), and clears applied through the single-writer path between
//! batches. The
//! serial (dedicated-core measurement) mode must agree with the parallel
//! fork-join mode as well.

use proptest::prelude::*;
use sdx_policy::{Action, Field, Match, Packet, Pattern, Rule};
use sdx_switch::{FlowRule, ShardedSwitch, SoftSwitch};

/// Overlapping prefixes so shadowing and containment chains occur.
const PREFIXES: &[&str] = &[
    "0.0.0.0/1",
    "10.0.0.0/8",
    "10.1.0.0/16",
    "10.1.2.0/24",
    "10.128.0.0/9",
    "11.0.0.0/8",
    "128.0.0.0/1",
    "10.1.2.3/32",
];

/// Probe addresses hitting various depths of the prefix chains.
const ADDRS: &[[u8; 4]] = &[
    [10, 1, 2, 3],
    [10, 1, 9, 9],
    [10, 200, 0, 1],
    [11, 5, 5, 5],
    [200, 1, 1, 1],
];

/// Optional DstIp prefix, SrcIp prefix, exact DstPort, exact ingress Port.
type MatchSpec = (Option<u8>, Option<u8>, Option<u8>, Option<u8>);

fn build_match(spec: &MatchSpec) -> Match {
    let mut m = Match::any();
    if let Some(i) = spec.0 {
        let p = PREFIXES[i as usize % PREFIXES.len()].parse().unwrap();
        m = m.and(Field::DstIp, Pattern::Prefix(p)).unwrap();
    }
    if let Some(i) = spec.1 {
        let p = PREFIXES[i as usize % PREFIXES.len()].parse().unwrap();
        m = m.and(Field::SrcIp, Pattern::Prefix(p)).unwrap();
    }
    if let Some(v) = spec.2 {
        m = m
            .and(Field::DstPort, Pattern::Exact((v % 4) as u64))
            .unwrap();
    }
    if let Some(v) = spec.3 {
        m = m.and(Field::Port, Pattern::Exact((v % 3) as u64)).unwrap();
    }
    m
}

#[derive(Debug, Clone)]
enum Op {
    /// Install one rule at an arbitrary priority.
    Install(u32, MatchSpec),
    /// Append a batch strictly above everything (the fast-path overlay).
    Append(Vec<MatchSpec>),
    /// Remove by cookie.
    RemoveCookie(u64),
    /// A delta-plan install: in-band, just above the current ceiling (the
    /// churn engine's `delta_base + n - i` placement).
    DeltaInstall(u8, MatchSpec),
    /// A delta-plan removal: retire the k-th live rule by *content* (the
    /// update plan's `remove_matching`), not by cookie.
    RemoveMatching(u8),
    /// Drop everything.
    Clear,
}

fn arb_spec() -> impl Strategy<Value = MatchSpec> {
    (
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..6, arb_spec()).prop_map(|(p, s)| Op::Install(p, s)),
        (0u32..6, arb_spec()).prop_map(|(p, s)| Op::Install(p, s)),
        (0u32..6, arb_spec()).prop_map(|(p, s)| Op::Install(p, s)),
        prop::collection::vec(arb_spec(), 1..4).prop_map(Op::Append),
        (0u64..30).prop_map(Op::RemoveCookie),
        (any::<u8>(), arb_spec()).prop_map(|(o, s)| Op::DeltaInstall(o, s)),
        (any::<u8>(), arb_spec()).prop_map(|(o, s)| Op::DeltaInstall(o, s)),
        any::<u8>().prop_map(Op::RemoveMatching),
        any::<u8>().prop_map(Op::RemoveMatching),
        Just(Op::Clear),
    ]
}

/// Apply one churn op to a table-owning switch.
fn apply_op(sw: &mut SoftSwitch, op: &Op, next_cookie: &mut u64) {
    match op {
        Op::Install(prio, spec) => {
            let cookie = *next_cookie;
            *next_cookie += 1;
            sw.install_rule(
                FlowRule::new(
                    *prio,
                    build_match(spec),
                    vec![Action::set(Field::Port, cookie as u32 % 3)],
                )
                .with_cookie(cookie),
            );
        }
        Op::Append(specs) => {
            let cookie = *next_cookie;
            *next_cookie += 1;
            let rules: Vec<Rule> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| Rule {
                    match_: build_match(s),
                    actions: if i % 2 == 0 {
                        vec![Action::set(Field::Port, 1u32)]
                    } else {
                        vec![]
                    },
                })
                .collect();
            let _ = sw.table_mut().append_rules_above(&rules, cookie, None);
        }
        Op::RemoveCookie(c) => {
            sw.table_mut().remove_by_cookie(*c);
        }
        Op::DeltaInstall(off, spec) => {
            let cookie = *next_cookie;
            *next_cookie += 1;
            let prio = sw
                .table()
                .max_priority()
                .unwrap_or(0)
                .saturating_add(1 + (*off % 3) as u32);
            sw.install_rule(
                FlowRule::new(
                    prio,
                    build_match(spec),
                    vec![Action::set(Field::Port, cookie as u32 % 3)],
                )
                .with_cookie(cookie),
            );
        }
        Op::RemoveMatching(k) => {
            // Deterministic across switches: the tables are identical, so
            // the k-th rule is the same everywhere.
            let len = sw.table().len();
            if len > 0 {
                let victim = sw.table().rules()[*k as usize % len].clone();
                sw.table_mut().remove_matching(&victim);
            }
        }
        Op::Clear => {
            sw.table_mut().clear();
        }
    }
}

/// The probe batch: a spread of flows across the prefix chains, DstPorts,
/// and ingress ports (including a bad-ingress one).
fn probe_batch(src_pick: u8) -> Vec<Packet> {
    let src = ADDRS[src_pick as usize % ADDRS.len()];
    let mut pkts = Vec::new();
    for dst in ADDRS {
        for dport in 0u16..4 {
            for port in [0u32, 2, 7] {
                pkts.push(
                    Packet::new()
                        .with(Field::Port, port)
                        .with(Field::SrcIp, std::net::Ipv4Addr::from(src))
                        .with(Field::DstIp, std::net::Ipv4Addr::from(*dst))
                        .with(Field::DstPort, dport),
                );
            }
        }
    }
    pkts
}

fn counters_of(sw: &SoftSwitch) -> Vec<u64> {
    (0..sw.table().len())
        .map(|i| sw.table().packet_count(i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sharded_equals_single_shard_oracle(
        ops in prop::collection::vec(arb_op(), 1..12),
        src_pick in any::<u8>(),
    ) {
        const PORTS: [u32; 3] = [0, 1, 2];
        const SHARDS: [usize; 4] = [1, 2, 4, 8];

        let mut oracle = SoftSwitch::new(PORTS);
        let mut sharded: Vec<ShardedSwitch> = SHARDS
            .iter()
            .map(|&n| ShardedSwitch::new(SoftSwitch::new(PORTS), n))
            .collect();
        // The serial measurement mode must match the parallel path too.
        let mut serial = ShardedSwitch::new(SoftSwitch::new(PORTS), 4);
        let mut serial_out = sdx_switch::BatchOutput::new();

        let pkts = probe_batch(src_pick);
        let mut oracle_cookie = 0u64;

        for op in &ops {
            // Mutate every switch identically through the single writer,
            // replaying each with the same cookie counter so cookies match.
            let cookie_before = oracle_cookie;
            apply_op(&mut oracle, op, &mut oracle_cookie);
            for sw in &mut sharded {
                let mut c = cookie_before;
                apply_op(sw.master_mut(), op, &mut c);
            }
            {
                let mut c = cookie_before;
                apply_op(serial.master_mut(), op, &mut c);
            }

            // Probe after every mutation: snapshots must republish.
            let want = oracle.process_batch(&pkts);
            let want_counters = counters_of(&oracle);
            for (sw, &n) in sharded.iter_mut().zip(SHARDS.iter()) {
                prop_assert_eq!(&sw.process_batch(&pkts), &want, "shards={}", n);
                prop_assert_eq!(sw.stats(), oracle.stats(), "stats shards={}", n);
                prop_assert_eq!(
                    counters_of(sw.master()), want_counters.clone(),
                    "counters shards={}", n
                );
            }
            serial.process_batch_serial_into(&pkts, &mut serial_out);
            prop_assert_eq!(&serial_out.to_vecs(), &want, "serial mode");
            prop_assert_eq!(serial.stats(), oracle.stats(), "serial stats");
            prop_assert_eq!(counters_of(serial.master()), want_counters, "serial counters");
        }
    }
}
