//! Property test for the tuple-space lookup index: on the same rule set,
//! the indexed lookup must be bit-identical to the linear-scan oracle —
//! same chosen rule and same packet counters — across randomized rule sets
//! with overlapping prefixes, shadowed rules, and mid-stream appends,
//! removals, and clears.

use proptest::prelude::*;
use sdx_policy::{Action, Field, Match, Packet, Pattern, Rule};
use sdx_switch::{FlowRule, FlowTable};

/// Deliberately overlapping prefixes, so containment chains and shadowing
/// occur constantly.
const PREFIXES: &[&str] = &[
    "0.0.0.0/1",
    "10.0.0.0/8",
    "10.1.0.0/16",
    "10.1.2.0/24",
    "10.128.0.0/9",
    "11.0.0.0/8",
    "128.0.0.0/1",
    "10.1.2.3/32", // canonicalizes to Exact: shares a bucket with exacts
];

/// Probe addresses hitting various depths of the prefix chains (and one
/// outside them all... almost: 0.0.0.0/1 covers 11.x and 10.x).
const ADDRS: &[[u8; 4]] = &[
    [10, 1, 2, 3],
    [10, 1, 9, 9],
    [10, 200, 0, 1],
    [11, 5, 5, 5],
    [200, 1, 1, 1],
];

/// A compact rule-match spec: optional DstIp prefix, optional SrcIp prefix,
/// optional exact DstPort, optional exact ingress Port.
type MatchSpec = (Option<u8>, Option<u8>, Option<u8>, Option<u8>);

fn build_match(spec: &MatchSpec) -> Match {
    let mut m = Match::any();
    if let Some(i) = spec.0 {
        let p = PREFIXES[i as usize % PREFIXES.len()].parse().unwrap();
        m = m.and(Field::DstIp, Pattern::Prefix(p)).unwrap();
    }
    if let Some(i) = spec.1 {
        let p = PREFIXES[i as usize % PREFIXES.len()].parse().unwrap();
        m = m.and(Field::SrcIp, Pattern::Prefix(p)).unwrap();
    }
    if let Some(v) = spec.2 {
        m = m
            .and(Field::DstPort, Pattern::Exact((v % 4) as u64))
            .unwrap();
    }
    if let Some(v) = spec.3 {
        m = m.and(Field::Port, Pattern::Exact((v % 3) as u64)).unwrap();
    }
    m
}

#[derive(Debug, Clone)]
enum Op {
    /// Install one rule at an arbitrary priority (interleaves bands).
    Install(u32, MatchSpec),
    /// Append a batch strictly above everything installed (the fast-path
    /// overlay primitive).
    Append(Vec<MatchSpec>),
    /// Remove by cookie (cookies are assigned sequentially, so small values
    /// often hit).
    RemoveCookie(u64),
    /// Drop everything.
    Clear,
}

fn arb_spec() -> impl Strategy<Value = MatchSpec> {
    (
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Installs dominate (several arms), with occasional overlay appends,
    // cookie removals, and clears mixed in.
    prop_oneof![
        (0u32..6, arb_spec()).prop_map(|(p, s)| Op::Install(p, s)),
        (0u32..6, arb_spec()).prop_map(|(p, s)| Op::Install(p, s)),
        (0u32..6, arb_spec()).prop_map(|(p, s)| Op::Install(p, s)),
        (0u32..6, arb_spec()).prop_map(|(p, s)| Op::Install(p, s)),
        prop::collection::vec(arb_spec(), 1..4).prop_map(Op::Append),
        prop::collection::vec(arb_spec(), 1..4).prop_map(Op::Append),
        (0u64..40).prop_map(Op::RemoveCookie),
        Just(Op::Clear),
    ]
}

proptest! {
    #[test]
    fn indexed_lookup_equals_linear_oracle(
        ops in prop::collection::vec(arb_op(), 1..20),
        src_pick in any::<u8>(),
    ) {
        // Two identical tables: `indexed` probed through the tuple-space
        // index, `oracle` through the linear scan. Every mutation is applied
        // to both; every probe must agree, including the counters.
        let mut indexed = FlowTable::new();
        let mut oracle = FlowTable::new();
        let mut next_cookie = 0u64;

        for op in &ops {
            match op {
                Op::Install(prio, spec) => {
                    let cookie = next_cookie;
                    next_cookie += 1;
                    for t in [&mut indexed, &mut oracle] {
                        t.install(
                            FlowRule::new(
                                *prio,
                                build_match(spec),
                                vec![Action::set(Field::Port, cookie as u32 % 3)],
                            )
                            .with_cookie(cookie),
                        );
                    }
                }
                Op::Append(specs) => {
                    let cookie = next_cookie;
                    next_cookie += 1;
                    let rules: Vec<Rule> = specs
                        .iter()
                        .enumerate()
                        .map(|(i, s)| Rule {
                            match_: build_match(s),
                            // Every other appended rule is a drop, so
                            // shadowing by empty-action rules is exercised.
                            actions: if i % 2 == 0 {
                                vec![Action::set(Field::Port, 1u32)]
                            } else {
                                vec![]
                            },
                        })
                        .collect();
                    let b1 = indexed.append_rules_above(&rules, cookie, None);
                    let b2 = oracle.append_rules_above(&rules, cookie, None);
                    prop_assert_eq!(b1, b2);
                }
                Op::RemoveCookie(c) => {
                    prop_assert_eq!(indexed.remove_by_cookie(*c), oracle.remove_by_cookie(*c));
                }
                Op::Clear => {
                    indexed.clear();
                    oracle.clear();
                }
            }

            // Probe after every mutation: the index must track the table
            // incrementally, not just at the end.
            let src = ADDRS[src_pick as usize % ADDRS.len()];
            for dst in ADDRS {
                for dport in 0u64..4 {
                    for port in [0u64, 2] {
                        let pkt = Packet::new()
                            .with(Field::Port, port as u32)
                            .with(Field::SrcIp, std::net::Ipv4Addr::from(src))
                            .with(Field::DstIp, std::net::Ipv4Addr::from(*dst))
                            .with(Field::DstPort, dport as u16);
                        let a = indexed.lookup(&pkt);
                        let b = oracle.lookup_linear(&pkt);
                        prop_assert_eq!(a, b, "probe {:?}", pkt);
                    }
                }
            }
        }

        // Same rules in the same order, and bit-identical counters.
        prop_assert_eq!(indexed.rules(), oracle.rules());
        for i in 0..indexed.len() {
            prop_assert_eq!(indexed.packet_count(i), oracle.packet_count(i), "counter {}", i);
        }
        prop_assert_eq!(indexed.total_hits(), oracle.total_hits());
    }
}
