//! Steady-state allocation audit for the data-plane hot path: after a
//! warm-up batch has grown every scratch buffer to its high-water mark,
//! processing further batches — single-shard `process_batch_into` and the
//! sharded serial path alike — must perform **zero** heap allocations.
//!
//! Mechanism: a counting global allocator armed around the measured region.
//! This file contains exactly one `#[test]` so no concurrent test can
//! allocate while the counter is armed (the sharded path is exercised in
//! serial mode for the same reason — worker-thread spawns allocate).

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sdx_policy::{fwd, match_, Field, Packet};
use sdx_switch::{BatchOutput, ShardedSwitch, SoftSwitch};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `f` with the allocation counter armed; returns how many heap
/// allocations it performed.
fn allocations_during(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn policy_switch() -> SoftSwitch {
    let mut sw = SoftSwitch::new([1, 2, 3]);
    let policy = (match_(Field::DstPort, 80u16) >> fwd(2))
        + (match_(Field::DstPort, 443u16) >> (fwd(2) + fwd(3)));
    sw.install_classifier(&policy.compile(), 1);
    sw
}

fn traffic(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::tcp(
                1 + (i % 3) as u32,
                Ipv4Addr::from(0x0a00_0000 + i as u32),
                Ipv4Addr::new(20, 0, 0, 1),
                (1024 + i) as u16,
                if i % 3 == 0 { 443 } else { 80 },
            )
        })
        .collect()
}

#[test]
fn hot_path_is_allocation_free_in_steady_state() {
    let pkts = traffic(512);

    // --- Single-shard batch path -----------------------------------------
    let mut sw = policy_switch();
    let mut out = BatchOutput::new();
    // Warm up: grows the arena, spans, and pipeline scratch to their
    // high-water marks (and exercises every rule at least once).
    for _ in 0..3 {
        sw.process_batch_into(&pkts, &mut out);
    }
    let single = allocations_during(|| {
        sw.process_batch_into(&pkts, &mut out);
    });
    assert_eq!(
        single, 0,
        "single-shard process_batch_into allocated {single} times in steady state"
    );
    assert!(out.emitted() > 0, "measured batch forwarded nothing");

    // --- Sharded serial path (4 shards on the calling thread) ------------
    let mut sharded = ShardedSwitch::new(policy_switch(), 4);
    let mut sout = BatchOutput::new();
    for _ in 0..3 {
        sharded.process_batch_serial_into(&pkts, &mut sout);
    }
    let shard = allocations_during(|| {
        sharded.process_batch_serial_into(&pkts, &mut sout);
    });
    assert_eq!(
        shard, 0,
        "sharded serial batch allocated {shard} times in steady state"
    );
    assert!(
        sout.emitted() > 0,
        "measured sharded batch forwarded nothing"
    );

    // --- Single-packet path ----------------------------------------------
    // `process` returns an owned Vec, so it cannot be fully zero-alloc; it
    // must still be O(1) allocations (the output Vec only), not O(pipeline).
    let warm = &pkts[0];
    let _ = sw.process(warm);
    let per_packet = allocations_during(|| {
        let _ = sw.process(warm);
    });
    assert!(
        per_packet <= 1,
        "process allocated {per_packet} times for one packet (expected ≤1: the output Vec)"
    );
}
