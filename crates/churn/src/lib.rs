//! Streaming churn engine (§4.3.2 made continuous): a virtual-time event
//! loop that drains Table-1-shaped BGP update traces end-to-end — route
//! server decision → incremental recompile of only the touched fragment →
//! **rule-level flow-table delta** applied in make-before-break order
//! against the live tuple-space index — while interleaving a configurable
//! packet-replay load on the sharded data plane and periodically running
//! the paper's background reoptimization to coalesce accumulated deltas.
//!
//! Convergence latency is measured per route event as *route-event ingress
//! → first correctly-forwarded packet*: after the delta lands, a viewer's
//! border router is brought in sync for just the touched prefix and a
//! probe packet is pushed through the fabric; the clock stops when the
//! probe reaches the participant the route server selected. The engine
//! honors [`SdxRuntime::needs_reoptimize`]: when the fast path degrades
//! (VNH pool exhausted, install refused) a background reoptimization is
//! forced immediately instead of waiting for the periodic one.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdx_core::{Participant, ParticipantId, SdxRuntime};
use sdx_ip::Prefix;
use sdx_policy::{Field, Packet};
use sdx_switch::{ArpReply, BatchOutput, BorderRouter, Forward};
use sdx_workload::{stream_trace, IxpTopology, TraceConfig, TraceEvent};

mod queue;
pub use queue::{Activity, EventQueue};

/// Probe source address: outside every announced prefix and above the
/// well-known port range, so no generated policy clause can deflect it —
/// the probe exercises *default forwarding*, whose receiver the route
/// server's best route determines exactly.
const PROBE_SRC: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Trace shape (duration, unstable fraction, withdraw probability).
    pub trace: TraceConfig,
    /// Trace seed.
    pub seed: u64,
    /// Virtual seconds between replay batches on the sharded data plane
    /// (0 disables replay).
    pub replay_interval_s: u64,
    /// Flows in the pre-built replay batch.
    pub replay_flows: usize,
    /// Virtual seconds between background reoptimizations (0 disables the
    /// periodic ones; forced ones still honor `needs_reoptimize`).
    pub reoptimize_interval_s: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            trace: TraceConfig::default(),
            seed: 11,
            replay_interval_s: 60,
            replay_flows: 256,
            reoptimize_interval_s: 1_800,
        }
    }
}

/// What a churn run measured.
#[derive(Debug, Clone, Default)]
pub struct ChurnReport {
    /// Route-change events processed.
    pub events: usize,
    /// Bursts the trace generated.
    pub bursts: usize,
    /// Virtual seconds covered.
    pub virtual_s: u64,
    /// Wall-clock seconds spent handling route events (excludes replay).
    pub update_busy_s: f64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Sustained controller throughput: events / update-handling time.
    pub updates_per_sec: f64,
    /// Route-event-ingress → first-correctly-forwarded-packet, p50 µs.
    pub convergence_p50_us: u64,
    /// … p99 µs.
    pub convergence_p99_us: u64,
    /// … worst case µs.
    pub convergence_max_us: u64,
    /// Probes that measured convergence.
    pub convergence_samples: usize,
    /// Probes that never converged (even after a forced reoptimize).
    pub convergence_failures: u64,
    /// Rules installed by the delta path.
    pub delta_installed: u64,
    /// Rules removed by the delta path.
    pub delta_removed: u64,
    /// Largest per-event rule delta (installs + removals).
    pub delta_rules_max: usize,
    /// Mean per-event rule delta.
    pub delta_rules_mean: f64,
    /// Background reoptimizations run (periodic + forced).
    pub reoptimizes: u64,
    /// … of which were forced by `needs_reoptimize` or a failed probe.
    pub reoptimizes_forced: u64,
    /// Fast-path VNH-pool exhaustions observed.
    pub overlay_exhausted: u64,
    /// Fast-path installs refused by the flow table.
    pub install_errors: u64,
    /// Replay batches pushed through the sharded data plane.
    pub replay_batches: u64,
    /// Packets replayed.
    pub replayed_packets: u64,
    /// Overlay rules live when the run ended.
    pub overlay_rules_final: usize,
    /// Streamed deltas checked by the incremental safety verifier (0 when
    /// `delta_check` is off).
    pub delta_checked: u64,
    /// … certified safe (structurally or symbolically).
    pub delta_certified: u64,
    /// … certified by the structural gate alone (no symbolic work).
    pub delta_structural: u64,
    /// … reordered by the DFS search before install.
    pub delta_reordered: u64,
    /// … for which no per-packet-consistent schedule exists.
    pub delta_rejected: u64,
    /// … denied install under `delta_check = Deny` (degraded to a forced
    /// reoptimize).
    pub delta_denied: u64,
    /// Per-event incremental check latency, p50 µs (0 when unchecked).
    pub check_p50_us: u64,
    /// … p99 µs.
    pub check_p99_us: u64,
    /// … worst case µs.
    pub check_max_us: u64,
    /// Total µs spent in incremental delta checking.
    pub check_total_us: u64,
}

/// The engine: owns the runtime, the trace, the probe routers, and the
/// replay batch.
#[derive(Debug)]
pub struct ChurnEngine {
    runtime: SdxRuntime,
    topology: IxpTopology,
    config: ChurnConfig,
    probe_routers: BTreeMap<ParticipantId, BorderRouter>,
    replay_frames: Vec<Packet>,
    out: BatchOutput,
    latencies_us: Vec<u64>,
    check_us: Vec<u64>,
    report: ChurnReport,
    delta_rules_total: u64,
    update_busy: Duration,
}

impl ChurnEngine {
    /// Wrap a runtime (compiled or not; [`run`](Self::run) compiles on
    /// demand) and the topology its participants came from.
    pub fn new(runtime: SdxRuntime, topology: IxpTopology, config: ChurnConfig) -> Self {
        ChurnEngine {
            runtime,
            topology,
            config,
            probe_routers: BTreeMap::new(),
            replay_frames: Vec::new(),
            out: BatchOutput::new(),
            latencies_us: Vec::new(),
            check_us: Vec::new(),
            report: ChurnReport::default(),
            delta_rules_total: 0,
            update_busy: Duration::ZERO,
        }
    }

    /// The runtime, e.g. for fingerprinting after a run.
    pub fn runtime_mut(&mut self) -> &mut SdxRuntime {
        &mut self.runtime
    }

    /// Take the runtime back.
    pub fn into_runtime(self) -> SdxRuntime {
        self.runtime
    }

    /// Drain the configured trace through the delta-install pipeline.
    /// Deterministic in virtual time; wall-clock figures depend on the
    /// machine.
    pub fn run(&mut self) -> ChurnReport {
        if self.runtime.compilation().is_none() {
            self.runtime.compile().expect("initial compile");
        }
        self.rebuild_replay_frames();

        let mut stream = stream_trace(&self.topology, self.config.trace, self.config.seed);
        // One-slot lookahead so periodic activities can be merged by
        // deadline without materializing the trace.
        let mut pending = stream.next();
        let mut queue = EventQueue::new();
        if self.config.replay_interval_s > 0 && self.config.replay_flows > 0 {
            queue.push(self.config.replay_interval_s, Activity::Replay);
        }
        if self.config.reoptimize_interval_s > 0 {
            queue.push(self.config.reoptimize_interval_s, Activity::Reoptimize);
        }

        let wall = Instant::now();
        let mut virtual_now = 0u64;
        // Merge the lazily pulled trace with the periodic activities by
        // virtual deadline: everything scheduled at or before the next
        // update fires first, then the update itself.
        while let Some(at_s) = pending.as_ref().map(|e| e.at_s) {
            while queue.peek_at().is_some_and(|t| t <= at_s) {
                // An update at `at_s >= t` always follows, so virtual time
                // advances via the update below.
                let (t, activity) = queue.pop().expect("peeked");
                match activity {
                    Activity::Replay => {
                        self.replay();
                        queue.push(t + self.config.replay_interval_s, Activity::Replay);
                    }
                    Activity::Reoptimize => {
                        self.reoptimize(false);
                        queue.push(t + self.config.reoptimize_interval_s, Activity::Reoptimize);
                    }
                }
            }
            let event = pending.take().expect("peeked");
            virtual_now = event.at_s;
            self.handle_update(event);
            pending = stream.next();
        }

        let summary = stream.summary();
        let incremental = self.runtime.incremental_stats();
        self.latencies_us.sort_unstable();
        self.report.bursts = summary.bursts;
        self.report.virtual_s = virtual_now;
        self.report.update_busy_s = self.update_busy.as_secs_f64();
        self.report.wall_s = wall.elapsed().as_secs_f64();
        self.report.updates_per_sec =
            self.report.events as f64 / self.report.update_busy_s.max(f64::EPSILON);
        self.report.convergence_p50_us = percentile_us(&self.latencies_us, 0.50);
        self.report.convergence_p99_us = percentile_us(&self.latencies_us, 0.99);
        self.report.convergence_max_us = self.latencies_us.last().copied().unwrap_or(0);
        self.report.convergence_samples = self.latencies_us.len();
        self.report.delta_installed = incremental.delta_installed;
        self.report.delta_removed = incremental.delta_removed;
        self.report.delta_rules_mean =
            self.delta_rules_total as f64 / (self.report.events as f64).max(1.0);
        self.report.overlay_exhausted = incremental.overlay_exhausted;
        self.report.install_errors = incremental.install_errors;
        self.report.overlay_rules_final = incremental.overlay_rules;
        self.report.delta_checked = incremental.delta_checked;
        self.report.delta_certified = incremental.delta_certified;
        self.report.delta_structural = incremental.delta_structural;
        self.report.delta_reordered = incremental.delta_reordered;
        self.report.delta_rejected = incremental.delta_rejected;
        self.report.delta_denied = incremental.delta_denied;
        self.report.check_total_us = incremental.delta_check_us;
        self.check_us.sort_unstable();
        self.report.check_p50_us = percentile_us(&self.check_us, 0.50);
        self.report.check_p99_us = percentile_us(&self.check_us, 0.99);
        self.report.check_max_us = self.check_us.last().copied().unwrap_or(0);
        self.report.clone()
    }

    /// One route event: delta-install, honor the degradation flag, then
    /// measure route-event-ingress → first correctly-forwarded packet.
    fn handle_update(&mut self, event: TraceEvent) {
        let start = Instant::now();
        let checked_before = self.runtime.incremental_stats().delta_checked;
        let (touched, delta) = self.runtime.apply_update_delta(event.from, &event.update);
        self.report.events += 1;
        let rules = delta.installed + delta.removed;
        self.report.delta_rules_max = self.report.delta_rules_max.max(rules);
        self.delta_rules_total = self.delta_rules_total.saturating_add(rules as u64);
        // Per-event verifier latency: `last_check_us` accumulates across
        // every prefix the event touched and resets on the next event.
        let inc = self.runtime.incremental_stats();
        if inc.delta_checked > checked_before {
            self.check_us.push(inc.last_check_us);
        }

        // The fast path degraded (VNH exhaustion / refused install):
        // recover *now* — the stale state keeps forwarding meanwhile.
        if self.runtime.needs_reoptimize() {
            self.reoptimize(true);
        }

        // Convergence probe on the first touched prefix that still has a
        // best route (pure withdrawals converge by ceasing to forward; no
        // positive probe exists for them).
        let target = touched
            .iter()
            .find_map(|p| self.probe_target(*p).map(|(v, r)| (*p, v, r)));
        if let Some((prefix, viewer, receiver)) = target {
            let mut delivered = self.probe(prefix, viewer, receiver);
            if !delivered {
                // Escalate once: force the background stage, re-derive the
                // expected receiver, re-probe.
                self.reoptimize(true);
                delivered = self
                    .probe_target(prefix)
                    .map(|(v, r)| self.probe(prefix, v, r))
                    .unwrap_or(false);
            }
            if delivered {
                self.latencies_us
                    .push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
            } else {
                self.report.convergence_failures =
                    self.report.convergence_failures.saturating_add(1);
            }
        }
        self.update_busy += start.elapsed();
    }

    /// Pick a (viewer, expected receiver) pair for `prefix`: the first
    /// physical participant that neither announces the prefix itself nor is
    /// denied the route, and the participant its best route points at.
    fn probe_target(&self, prefix: Prefix) -> Option<(ParticipantId, ParticipantId)> {
        let rs = self.runtime.route_server();
        for p in self.runtime.participants().filter(|p| p.is_physical()) {
            if rs.announced_by(p.id.peer()).contains(&prefix) {
                continue;
            }
            if let Some(best) = rs.best_route(&prefix, p.id.peer()) {
                return Some((p.id, ParticipantId::from(best.peer)));
            }
        }
        None
    }

    /// Sync `viewer`'s probe router for this one prefix and push one probe
    /// through the fabric. True when any copy reaches `receiver`.
    fn probe(&mut self, prefix: Prefix, viewer: ParticipantId, receiver: ParticipantId) -> bool {
        let Some(port) = self
            .runtime
            .participants()
            .find(|p| p.id == viewer)
            .and_then(|p| p.ports.first().copied())
        else {
            return false;
        };
        let router = self
            .probe_routers
            .entry(viewer)
            .or_insert_with(|| BorderRouter::new(port.port, port.mac, port.ip));
        sync_prefix(&self.runtime, viewer, router, prefix);
        let pkt = probe_packet(prefix);
        let frame = match router.forward(pkt.clone()) {
            Forward::Frame(f) => Some(f),
            Forward::NeedArp(req) => self.runtime.resolve_arp(&req).and_then(|reply| {
                router.learn_arp(&reply);
                match router.forward(pkt) {
                    Forward::Frame(f) => Some(f),
                    _ => None,
                }
            }),
            Forward::NoRoute => None,
        };
        let Some(frame) = frame else { return false };
        self.runtime
            .process_packet(&frame)
            .iter()
            .any(|(port, _)| self.runtime.port_owner(*port) == Some(receiver))
    }

    /// Background reoptimization: full recompile (coalesces every delta
    /// fragment back into minimal tables, resets the VNH pool), then
    /// refresh everything derived from VMAC tags.
    fn reoptimize(&mut self, forced: bool) {
        if self.runtime.reoptimize().is_ok() {
            self.report.reoptimizes = self.report.reoptimizes.saturating_add(1);
            if forced {
                self.report.reoptimizes_forced = self.report.reoptimizes_forced.saturating_add(1);
            }
            // Every VNH/VMAC binding changed: cached probe-router state and
            // pre-tagged replay frames are stale.
            self.probe_routers.clear();
            self.rebuild_replay_frames();
        }
    }

    /// Push the replay batch through the sharded data plane (snapshot
    /// republication under sustained mutation is exactly what this
    /// exercises).
    fn replay(&mut self) {
        if self.replay_frames.is_empty() {
            return;
        }
        self.runtime
            .process_batch_into(&self.replay_frames, &mut self.out);
        self.report.replay_batches = self.report.replay_batches.saturating_add(1);
        self.report.replayed_packets = self
            .report
            .replayed_packets
            .saturating_add(self.replay_frames.len() as u64);
    }

    /// Pre-tag a batch of cross-participant flows as the senders' border
    /// routers would emit them (FIB + ARP + VMAC tag), mirroring the
    /// data-plane bench's traffic model.
    fn rebuild_replay_frames(&mut self) {
        self.replay_frames.clear();
        if self.config.replay_flows == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed_f10e);
        let senders: Vec<&Participant> = self
            .topology
            .participants
            .iter()
            .filter(|p| p.is_physical())
            .collect();
        if senders.is_empty() || self.topology.announcements.is_empty() {
            return;
        }
        let mut routers: BTreeMap<ParticipantId, BorderRouter> = BTreeMap::new();
        for _ in 0..self.config.replay_flows * 4 {
            if self.replay_frames.len() >= self.config.replay_flows {
                break;
            }
            let sender = senders[rng.gen_range(0..senders.len())];
            let ann =
                &self.topology.announcements[rng.gen_range(0..self.topology.announcements.len())];
            if ann.from == sender.id {
                continue;
            }
            let prefix = ann.prefixes[rng.gen_range(0..ann.prefixes.len())];
            let pkt = Packet::new()
                .with(Field::EthType, 0x0800u16)
                .with(Field::IpProto, 17u8)
                .with(Field::SrcIp, Ipv4Addr::from(rng.gen::<u32>()))
                .with(Field::DstIp, prefix.first_addr())
                .with(Field::SrcPort, rng.gen_range(1024..u16::MAX))
                .with(
                    Field::DstPort,
                    *[80u16, 443, 53, 22].get(rng.gen_range(0..4)).unwrap(),
                );
            let router = routers.entry(sender.id).or_insert_with(|| {
                let port = &sender.ports[0];
                let mut r = BorderRouter::new(port.port, port.mac, port.ip);
                self.runtime.sync_router(sender.id, &mut r);
                r
            });
            let frame = match router.forward(pkt.clone()) {
                Forward::Frame(f) => Some(f),
                Forward::NeedArp(req) => self.runtime.resolve_arp(&req).and_then(|reply| {
                    router.learn_arp(&reply);
                    match router.forward(pkt) {
                        Forward::Frame(f) => Some(f),
                        _ => None,
                    }
                }),
                Forward::NoRoute => None,
            };
            self.replay_frames.extend(frame);
        }
    }
}

/// Install `viewer`'s route for exactly `prefix` (with the runtime's
/// next-hop substitution and ARP resolution) into `router` — the targeted
/// form of [`SdxRuntime::sync_router`], O(1) instead of O(prefixes).
pub fn sync_prefix(
    runtime: &SdxRuntime,
    viewer: ParticipantId,
    router: &mut BorderRouter,
    prefix: Prefix,
) {
    let rs = runtime.route_server();
    if rs.announced_by(viewer.peer()).contains(&prefix)
        || rs.best_route(&prefix, viewer.peer()).is_none()
    {
        router.remove_route(&prefix);
        return;
    }
    let nh = runtime
        .advertised_next_hop(&prefix, viewer)
        .expect("best route implies next hop");
    router.install_route(prefix, nh);
    if let Some(mac) = runtime.resolve_ip(nh) {
        router.learn_arp(&ArpReply {
            sender_mac: mac,
            sender_ip: nh,
            target_mac: router.mac(),
            target_ip: router.ip(),
        });
    }
}

/// The policy-neutral probe for `prefix` (see [`PROBE_SRC`]).
fn probe_packet(prefix: Prefix) -> Packet {
    Packet::new()
        .with(Field::EthType, 0x0800u16)
        .with(Field::IpProto, 1u8)
        .with(Field::SrcIp, PROBE_SRC)
        .with(Field::DstIp, prefix.first_addr())
        .with(Field::SrcPort, 40_000u16)
        .with(Field::DstPort, 33_434u16)
}

/// Deterministic digest of the fabric's end-to-end forwarding behavior:
/// for every announced prefix and each of (up to) `max_senders` physical
/// participants, freshly synced border routers emit a small probe grid
/// (policy-neutral + policy-exercising ports) and every delivery's egress
/// and full header are folded into an FNV hash. Delivered packets carry no
/// VMAC (the receiver stage rewrites tags to real router MACs), so the
/// digest is invariant to *how* the tables were reached — a streamed
/// delta-churned runtime and a one-shot batch recompile of the same RIB
/// hash identically iff they forward identically.
pub fn forwarding_fingerprint(
    runtime: &mut SdxRuntime,
    topology: &IxpTopology,
    max_senders: usize,
) -> u64 {
    let senders: Vec<Participant> = topology
        .participants
        .iter()
        .filter(|p| p.is_physical())
        .take(max_senders.max(1))
        .cloned()
        .collect();
    let mut routers: Vec<BorderRouter> = senders
        .iter()
        .map(|s| {
            let port = &s.ports[0];
            let mut r = BorderRouter::new(port.port, port.mac, port.ip);
            runtime.sync_router(s.id, &mut r);
            r
        })
        .collect();

    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mix = |h: &mut u64, v: u64| {
        *h ^= v;
        *h = h.wrapping_mul(PRIME);
    };
    for prefix in topology.all_prefixes() {
        for (sender, router) in senders.iter().zip(routers.iter_mut()) {
            mix(&mut h, sender.id.0 as u64 + 1);
            for (src, dport) in [
                (PROBE_SRC, 33_434u16),
                (sender.ports[0].ip, 80),
                (sender.ports[0].ip, 443),
            ] {
                let pkt = Packet::new()
                    .with(Field::EthType, 0x0800u16)
                    .with(Field::IpProto, 17u8)
                    .with(Field::SrcIp, src)
                    .with(Field::DstIp, prefix.first_addr())
                    .with(Field::SrcPort, 40_000u16)
                    .with(Field::DstPort, dport);
                let frame = match router.forward(pkt.clone()) {
                    Forward::Frame(f) => Some(f),
                    Forward::NeedArp(req) => runtime.resolve_arp(&req).and_then(|reply| {
                        router.learn_arp(&reply);
                        match router.forward(pkt) {
                            Forward::Frame(f) => Some(f),
                            _ => None,
                        }
                    }),
                    Forward::NoRoute => None,
                };
                match frame {
                    None => mix(&mut h, 0),
                    Some(frame) => {
                        let deliveries = runtime.process_packet(&frame);
                        mix(&mut h, deliveries.len() as u64 + 1);
                        for (egress, out) in &deliveries {
                            mix(&mut h, *egress as u64);
                            for (field, value) in out.iter() {
                                mix(&mut h, *field as u64 + 1);
                                mix(&mut h, *value);
                            }
                        }
                    }
                }
            }
        }
    }
    h
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}
