//! The virtual-time event queue driving the churn engine.
//!
//! A binary min-heap of `(virtual second, sequence)` keys. Periodic
//! activities (packet replay, background reoptimization) schedule
//! themselves here; BGP updates are *not* queued — they are pulled lazily
//! from a [`sdx_workload::TraceStream`] and merged with the queue by
//! deadline in the engine's run loop, so a week-long trace never
//! materializes in memory. Ties break by insertion order (FIFO), keeping
//! the loop deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A periodic engine activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Activity {
    /// Replay the pre-built traffic batch through the sharded data plane.
    Replay,
    /// Run the paper's background reoptimization, coalescing accumulated
    /// deltas back into minimal tables.
    Reoptimize,
}

/// Min-heap of scheduled activities keyed by virtual time.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u64, Activity)>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `activity` at virtual second `at_s`.
    pub fn push(&mut self, at_s: u64, activity: Activity) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at_s, seq, activity)));
    }

    /// Virtual time of the next scheduled activity.
    pub fn peek_at(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pop the next activity in (time, insertion) order.
    pub fn pop(&mut self) -> Option<(u64, Activity)> {
        self.heap.pop().map(|Reverse((at, _, a))| (at, a))
    }

    /// Number of pending activities.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(300, Activity::Reoptimize);
        q.push(10, Activity::Replay);
        q.push(70, Activity::Replay);
        assert_eq!(q.peek_at(), Some(10));
        assert_eq!(q.pop(), Some((10, Activity::Replay)));
        assert_eq!(q.pop(), Some((70, Activity::Replay)));
        assert_eq!(q.pop(), Some((300, Activity::Reoptimize)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Activity::Reoptimize);
        q.push(5, Activity::Replay);
        q.push(5, Activity::Replay);
        assert_eq!(q.pop(), Some((5, Activity::Reoptimize)));
        assert_eq!(q.pop(), Some((5, Activity::Replay)));
        assert_eq!(q.pop(), Some((5, Activity::Replay)));
        assert!(q.is_empty());
    }

    #[test]
    fn rescheduling_keeps_period() {
        let mut q = EventQueue::new();
        q.push(60, Activity::Replay);
        let mut fired = Vec::new();
        while let Some((at, a)) = q.pop() {
            fired.push(at);
            if at < 300 {
                q.push(at + 60, a);
            }
        }
        assert_eq!(fired, vec![60, 120, 180, 240, 300]);
    }

    #[test]
    fn fifo_ties_survive_interleaved_pops() {
        // A reschedule issued *while an equal-time entry is still queued*
        // must land behind it: the sequence counter keeps monotonic FIFO
        // order even when pushes and pops interleave.
        let mut q = EventQueue::new();
        q.push(100, Activity::Replay); // seq 0
        q.push(100, Activity::Reoptimize); // seq 1
        let first = q.pop().unwrap();
        assert_eq!(first, (100, Activity::Replay));
        // Reschedule the popped activity back at the *same* virtual time.
        q.push(100, first.1); // seq 2: behind the queued Reoptimize
        assert_eq!(q.pop(), Some((100, Activity::Reoptimize)));
        assert_eq!(q.pop(), Some((100, Activity::Replay)));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_periods_merge_by_deadline() {
        // Replay every 60 s and reoptimize every 90 s, rescheduled on pop
        // exactly as the engine's run loop does: the merged firing order is
        // globally sorted by time with FIFO on collisions (at t=180 both
        // fire; replay was pushed first from t=120 vs t=90, i.e. later —
        // check the actual interleaving explicitly).
        let mut q = EventQueue::new();
        q.push(60, Activity::Replay);
        q.push(90, Activity::Reoptimize);
        let mut fired = Vec::new();
        while let Some((at, a)) = q.pop() {
            if at > 360 {
                continue;
            }
            fired.push((at, a));
            let period = match a {
                Activity::Replay => 60,
                Activity::Reoptimize => 90,
            };
            q.push(at + period, a);
        }
        let times: Vec<u64> = fired.iter().map(|(t, _)| *t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "heap must drain in time order");
        assert_eq!(
            fired,
            vec![
                (60, Activity::Replay),
                (90, Activity::Reoptimize),
                (120, Activity::Replay),
                (180, Activity::Reoptimize),
                (180, Activity::Replay),
                (240, Activity::Replay),
                (270, Activity::Reoptimize),
                (300, Activity::Replay),
                (360, Activity::Reoptimize),
                (360, Activity::Replay),
            ]
        );
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Activity::Replay);
        q.push(2, Activity::Reoptimize);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_at(), None);
    }
}
