//! The streamed-vs-batch equivalence oracle: replaying a full Table-1
//! trace through the streaming engine (delta installs, interleaved replay,
//! periodic + forced reoptimization) must converge to the same end-to-end
//! forwarding fingerprint as a one-shot batch recompile of the final RIB
//! state — and the engine must recover from VNH-pool exhaustion without a
//! single failed convergence probe.

use proptest::prelude::*;
use sdx_churn::{forwarding_fingerprint, ChurnConfig, ChurnEngine};
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies, generate_trace, IxpProfile, IxpTopology, TraceConfig};

/// A policy-bearing runtime over a fresh AMS-IX-profile topology.
fn build(participants: usize, prefixes: usize, seed: u64) -> (SdxRuntime, IxpTopology) {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(participants, prefixes), seed);
    let mix = generate_policies(&topology, seed.wrapping_add(1));
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    (sdx, topology)
}

fn streamed_vs_batch(seed: u64, duration_s: u64) -> (u64, u64, sdx_churn::ChurnReport) {
    let config = ChurnConfig {
        trace: TraceConfig {
            duration_s,
            ..Default::default()
        },
        seed,
        replay_interval_s: 300,
        replay_flows: 24,
        reoptimize_interval_s: 900,
    };

    // Streamed: every event through the delta-install pipeline.
    let (sdx, topology) = build(10, 80, seed);
    let mut engine = ChurnEngine::new(sdx, topology.clone(), config);
    let report = engine.run();
    let streamed = forwarding_fingerprint(engine.runtime_mut(), &topology, 3);

    // Batch: same updates into the RIB first, one compile at the end.
    let (mut batch, _) = build(10, 80, seed);
    for e in &generate_trace(&topology, config.trace, seed).events {
        batch.apply_update(e.from, &e.update);
    }
    batch.compile().expect("batch recompile");
    let batch_fp = forwarding_fingerprint(&mut batch, &topology, 3);

    (streamed, batch_fp, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn streamed_equals_batch_fingerprint(seed in 0u64..1_000) {
        let (streamed, batch, report) = streamed_vs_batch(seed, 2_000);
        prop_assert!(report.events > 0, "trace produced no events");
        prop_assert_eq!(streamed, batch, "streamed != batch for seed {}", seed);
        prop_assert_eq!(report.convergence_failures, 0);
    }
}

#[test]
fn engine_measures_convergence_and_installs_deltas() {
    let (streamed, batch, report) = streamed_vs_batch(7, 4_000);
    assert_eq!(streamed, batch);
    assert!(report.events > 10, "events: {}", report.events);
    assert!(report.convergence_samples > 0);
    assert!(report.convergence_p50_us > 0);
    assert!(report.convergence_p99_us >= report.convergence_p50_us);
    assert!(
        report.delta_installed > 0,
        "steady path installed no deltas"
    );
    assert!(report.updates_per_sec > 0.0);
    assert!(report.replayed_packets > 0, "replay load never ran");
    assert_eq!(report.convergence_failures, 0);
}

#[test]
fn engine_recovers_from_vnh_exhaustion() {
    let config = ChurnConfig {
        trace: TraceConfig {
            duration_s: 8_000,
            ..Default::default()
        },
        seed: 3,
        replay_interval_s: 600,
        replay_flows: 16,
        // No periodic background stage: only the forced (needs_reoptimize)
        // path may recover the pool.
        reoptimize_interval_s: 0,
    };
    let (mut sdx, topology) = build(8, 60, 3);
    // A pool tight enough that sustained churn exhausts it mid-run but a
    // full compile still fits (the runtime's groups need a handful).
    sdx.set_vnh_pool("10.0.0.0/26".parse().unwrap());
    sdx.compile().expect("tight pool still compiles");
    let mut engine = ChurnEngine::new(sdx, topology, config);
    let report = engine.run();
    assert!(
        report.overlay_exhausted > 0,
        "pool never exhausted; shrink it: {report:?}"
    );
    assert!(
        report.reoptimizes_forced > 0,
        "engine ignored needs_reoptimize"
    );
    // The whole point: exhaustion degrades to stale-but-forwarding and the
    // forced background stage recovers — no probe may ever fail.
    assert_eq!(report.convergence_failures, 0, "{report:?}");
    assert!(!engine.runtime_mut().needs_reoptimize());
}
