//! Exactness of the symbolic reachability engine: on random small fabrics,
//! the header-space traversal must agree with the concrete packet
//! interpreter on every sampled packet — the symbolic outcome set of a
//! packet inside an injected region equals what chained table evaluation
//! emits for it.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdx::core::hs::{self, Flow, TRANSIT_REGION_LIMIT};
use sdx::core::{
    Clause, CompileOptions, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx_bgp::{AsPath, Asn, PathAttributes};
use sdx_ip::Prefix;
use sdx_policy::{match_, Field, Match, Packet, Pattern, Region};

const PREFIXES: [&str; 5] = [
    "10.0.0.0/8",
    "20.0.0.0/8",
    "30.0.0.0/8",
    "40.1.0.0/16",
    "50.2.0.0/16",
];
const PORTS: [u16; 3] = [80, 22, 443];

fn port(n: u32) -> PortConfig {
    PortConfig {
        port: n,
        mac: format!("02:00:00:00:00:{n:02x}").parse().unwrap(),
        ip: Ipv4Addr::new(172, 0, 0, n as u8),
    }
}

/// A random fabric: 2–4 physical participants, random announcements from a
/// small prefix pool, random outbound/inbound clauses (including unfiltered
/// and drop clauses), randomly single- or two-table.
fn random_fabric(rng: &mut StdRng) -> Option<SdxRuntime> {
    let n = rng.gen_range(2..=4u32);
    let mut sdx = SdxRuntime::new(CompileOptions {
        multi_table: rng.gen_bool(0.5),
        ..Default::default()
    });
    let ids: Vec<ParticipantId> = (1..=n).map(ParticipantId).collect();
    for &id in &ids {
        sdx.add_participant(Participant::new(id, Asn(65000 + id.0), vec![port(id.0)]));
    }
    for &id in &ids {
        for p in PREFIXES {
            if rng.gen_bool(0.4) {
                sdx.announce(
                    id,
                    [p.parse::<Prefix>().unwrap()],
                    PathAttributes::new(
                        AsPath::sequence([65000 + id.0]),
                        Ipv4Addr::new(172, 0, 0, id.0 as u8),
                    ),
                );
            }
        }
    }
    for &id in &ids {
        let mut policy = ParticipantPolicy::new();
        for _ in 0..rng.gen_range(0..=2) {
            let dp = PORTS[rng.gen_range(0..PORTS.len())];
            let to = ids[rng.gen_range(0..ids.len())];
            let clause = if rng.gen_bool(0.2) {
                Clause::drop(match_(Field::DstPort, dp))
            } else if rng.gen_bool(0.15) {
                Clause::fwd(match_(Field::DstPort, dp), to).unfiltered()
            } else {
                Clause::fwd(match_(Field::DstPort, dp), to)
            };
            policy = policy.outbound(clause);
        }
        if rng.gen_bool(0.3) {
            let dp = PORTS[rng.gen_range(0..PORTS.len())];
            policy = policy.inbound(if rng.gen_bool(0.3) {
                Clause::drop(match_(Field::DstPort, dp))
            } else {
                Clause::to_port(match_(Field::DstPort, dp), id.0)
            });
        }
        sdx.set_policy(id, policy);
    }
    sdx.compile().ok()?;
    Some(sdx)
}

fn random_dst_ip(rng: &mut StdRng) -> u32 {
    if rng.gen_bool(0.8) {
        let p: Prefix = PREFIXES[rng.gen_range(0..PREFIXES.len())].parse().unwrap();
        u32::from(p.addr()) | (rng.gen::<u32>() & (u32::MAX >> p.len()))
    } else {
        rng.gen()
    }
}

#[test]
fn symbolic_transit_agrees_with_the_packet_interpreter() {
    let mut rng = StdRng::seed_from_u64(0x5d_1234);
    let mut samples = 0usize;
    let mut fabrics = 0usize;
    while samples < 1000 && fabrics < 64 {
        let Some(sdx) = random_fabric(&mut rng) else {
            continue;
        };
        fabrics += 1;
        let vi = sdx
            .verify_input()
            .expect("compiled fabric has verify input");
        let oracle = |pkt: &Packet| -> BTreeSet<Packet> {
            let mut current: BTreeSet<Packet> = [pkt.clone()].into();
            for table in &vi.tables {
                let mut next = BTreeSet::new();
                for p in &current {
                    next.extend(table.evaluate(p));
                }
                current = next;
            }
            current
        };
        for fib in &vi.fibs {
            let ports: Vec<u32> = vi
                .participants
                .iter()
                .find(|(id, _)| *id == fib.participant)
                .map(|(_, p)| p.clone())
                .unwrap_or_default();
            let macs: BTreeSet<u64> = fib.entries.iter().filter_map(|e| e.mac).collect();
            for &p in &ports {
                for &mac in &macs {
                    let region = Region::from_match(
                        Match::on(Field::Port, Pattern::Exact(p as u64))
                            .and(Field::DstMac, Pattern::Exact(mac))
                            .expect("distinct fields"),
                    );
                    let result = hs::transit_pipeline(
                        &vi.tables,
                        vec![Flow::new(region)],
                        Field::DstMac,
                        TRANSIT_REGION_LIMIT,
                    );
                    assert!(!result.saturated, "small fabrics must not saturate");
                    for _ in 0..20 {
                        let pkt = Packet::new()
                            .with(Field::Port, p)
                            .with(Field::DstMac, mac)
                            .with(Field::DstIp, random_dst_ip(&mut rng))
                            .with(Field::DstPort, PORTS[rng.gen_range(0..PORTS.len())])
                            .with(Field::SrcPort, rng.gen_range(1024..u16::MAX as u32) as u16);
                        assert_eq!(
                            result.concrete_outcome(&pkt),
                            oracle(&pkt),
                            "fabric {fabrics}, injection port={p} mac={mac:#x}, pkt {pkt}"
                        );
                        samples += 1;
                    }
                }
            }
        }
    }
    assert!(
        samples >= 1000,
        "sampled only {samples} packets across {fabrics} fabrics"
    );
}
