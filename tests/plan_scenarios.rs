//! Integration tests for the static update planner (`sdx-plan`): the
//! adversarial churn fixtures in `scenarios/` must have their naive
//! install-stream orderings flagged with a named violating step and a
//! concrete witness packet, while the synthesized schedule passes every
//! intermediate-state check — and the runtime must actually install
//! churn-driven recompiles through that schedule.

use std::net::Ipv4Addr;

use sdx::bgp::{AsPath, Asn, PathAttributes};
use sdx::core::{
    AnalysisMode, Clause, CompileOptions, FabricSim, Participant, ParticipantId, ParticipantPolicy,
    PortConfig, SdxRuntime, Severity,
};
use sdx::policy::{match_, Field, Packet};
use sdx::scenario::run_scenario_with;

fn plan_options(mode: AnalysisMode) -> CompileOptions {
    CompileOptions {
        plan: mode,
        ..Default::default()
    }
}

fn fixture(name: &str) -> String {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn blackhole_fixture_flags_naive_order_with_witness() {
    let script = fixture("plan-blackhole.sdx");
    let (transcript, analysis) =
        run_scenario_with(plan_options(AnalysisMode::Warn), &script).unwrap();
    let analysis = analysis.expect("fixture compiles in warn mode");

    let hit = analysis
        .with_code("plan-naive-blackhole")
        .next()
        .unwrap_or_else(|| {
            panic!(
                "expected a plan-naive-blackhole finding, got {:?}",
                analysis.diagnostics
            )
        });
    assert_eq!(hit.severity, Severity::Error);
    // The finding names the violating step and carries a concrete witness.
    assert!(
        hit.message.contains("unsafe after step"),
        "step provenance missing: {}",
        hit.message
    );
    let witness = hit.witness.as_ref().expect("blackhole carries a witness");
    let dst = witness.dst_ip().expect("witness has a destination");
    assert_eq!(
        dst.octets()[0],
        20,
        "witness hits the re-homed prefix: {dst}"
    );

    // A safe schedule exists: the violations are evidence against the naive
    // order, not against the update itself.
    assert!(
        analysis.with_code("plan-ordered").next().is_some()
            || analysis.with_code("plan-two-phase").next().is_some(),
        "no synthesized schedule summary in {:?}",
        analysis.diagnostics
    );
    assert!(
        analysis.with_code("plan-unsafe").next().is_none(),
        "fixture must have a safe schedule"
    );

    // Post-churn forwarding converged on the new home.
    assert!(transcript.contains("delivered to C port 3"), "{transcript}");
}

#[test]
fn leak_fixture_flags_naive_order_with_witness() {
    let script = fixture("plan-leak.sdx");
    let (_, analysis) = run_scenario_with(plan_options(AnalysisMode::Warn), &script).unwrap();
    let analysis = analysis.expect("fixture compiles in warn mode");

    let hit = analysis
        .with_code("plan-naive-leak")
        .next()
        .unwrap_or_else(|| {
            panic!(
                "expected a plan-naive-leak finding, got {:?}",
                analysis.diagnostics
            )
        });
    assert_eq!(hit.severity, Severity::Error);
    assert!(
        hit.message.contains("unsafe after step") && hit.message.contains("never advertised"),
        "{}",
        hit.message
    );
    // The witness is the in-flight web packet that would reach the
    // unfiltered clause's target mid-update.
    let witness = hit.witness.as_ref().expect("leak carries a witness");
    assert_eq!(witness.get(Field::DstPort), Some(80), "web traffic leaks");
    let dst = witness.dst_ip().expect("witness has a destination");
    assert_eq!(dst.octets()[0], 20, "the re-homed prefix leaks: {dst}");

    assert!(
        analysis.with_code("plan-ordered").next().is_some()
            || analysis.with_code("plan-two-phase").next().is_some(),
        "no synthesized schedule summary in {:?}",
        analysis.diagnostics
    );
}

#[test]
fn plan_deny_passes_fixtures_with_safe_schedules() {
    // Deny blocks only when *no* safe schedule exists. Both adversarial
    // fixtures have one, so their compiles must succeed even in deny mode.
    for name in ["plan-blackhole.sdx", "plan-leak.sdx"] {
        let script = fixture(name);
        run_scenario_with(plan_options(AnalysisMode::Deny), &script)
            .unwrap_or_else(|e| panic!("{name} under plan deny: {e}"));
    }
}

/// A churn recompile with the gate active must go through the synthesized
/// schedule (rule-level delta against the live tables), and the planned
/// install must converge on exactly the forwarding a wholesale rebuild
/// would produce.
#[test]
fn churn_recompile_installs_via_synthesized_plan() {
    let mut sdx = SdxRuntime::new(plan_options(AnalysisMode::Warn));
    let a = ParticipantId(1);
    let b = ParticipantId(2);
    let c = ParticipantId(3);
    for (id, port, mac, ip) in [
        (a, 1u32, "02:0a:00:00:00:01", Ipv4Addr::new(172, 0, 0, 1)),
        (b, 2u32, "02:0b:00:00:00:01", Ipv4Addr::new(172, 0, 0, 2)),
        (c, 3u32, "02:0c:00:00:00:01", Ipv4Addr::new(172, 0, 0, 3)),
    ] {
        sdx.add_participant(Participant::new(
            id,
            Asn(65000 + id.0),
            vec![PortConfig {
                port,
                mac: mac.parse().unwrap(),
                ip,
            }],
        ));
    }
    sdx.announce(
        b,
        ["20.0.0.0/8".parse().unwrap()],
        PathAttributes::new(AsPath::sequence([65002]), Ipv4Addr::new(172, 0, 0, 2)),
    );
    sdx.announce(
        c,
        ["30.0.0.0/8".parse().unwrap()],
        PathAttributes::new(AsPath::sequence([65003]), Ipv4Addr::new(172, 0, 0, 3)),
    );
    sdx.set_policy(
        a,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), b)),
    );
    let first = sdx.compile().expect("first compile");
    assert_eq!(first.plan_steps, 0, "no plan before tables exist");
    assert!(!first.plan_applied);

    // Churn: 20.0.0.0/8 re-homes from B to C (fast path runs immediately).
    sdx.withdraw(b, ["20.0.0.0/8".parse().unwrap()]);
    sdx.announce(
        c,
        ["20.0.0.0/8".parse().unwrap()],
        PathAttributes::new(
            AsPath::sequence([65003, 65100]),
            Ipv4Addr::new(172, 0, 0, 3),
        ),
    );
    let second = sdx.compile().expect("churn recompile");

    assert!(second.plan_steps > 0, "churn produces a non-empty delta");
    assert!(
        second.plan_applied,
        "recompile must install through the synthesized schedule"
    );
    let report = sdx.last_plan().expect("plan report recorded");
    let schedule = report.schedule.as_ref().expect("safe schedule exists");
    assert_eq!(schedule.order.len(), second.plan_steps);
    assert!(
        !report.naive_violations.is_empty(),
        "the naive ordering of this churn is demonstrably unsafe"
    );

    // The planned install forwards exactly like the new state should.
    let mut sim = FabricSim::new(sdx);
    sim.sync();
    let pkt = Packet::new()
        .with(Field::EthType, 0x0800u16)
        .with(Field::IpProto, 6u8)
        .with(Field::SrcIp, Ipv4Addr::new(10, 0, 0, 1))
        .with(Field::DstIp, Ipv4Addr::new(20, 0, 0, 1))
        .with(Field::DstPort, 80u16);
    let deliveries = sim.send_from(a, pkt);
    assert_eq!(deliveries.len(), 1, "{deliveries:?}");
    assert_eq!(deliveries[0].port, 3, "20/8 now lives behind C");
}
