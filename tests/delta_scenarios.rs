//! Integration tests for the incremental delta-safety verifier's scenario
//! surface (`sdx-lint --delta`): the adversarial streamed-churn fixture
//! must have its naive rule ordering flagged with a concrete blackhole
//! witness, while the checked make-before-break install certifies and the
//! live fabric keeps forwarding correctly.

use sdx::core::{AnalysisMode, CompileOptions, DeltaVerdict, ViolationKind};
use sdx::scenario::run_scenario_delta;

fn delta_options(mode: AnalysisMode) -> CompileOptions {
    CompileOptions {
        delta_check: mode,
        ..Default::default()
    }
}

fn fixture(name: &str) -> String {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn inconsistent_fixture_flags_naive_order_with_witness() {
    let script = fixture("delta-inconsistent.sdx");
    let (transcript, records) =
        run_scenario_delta(delta_options(AnalysisMode::Warn), &script).unwrap();

    assert_eq!(records.len(), 2, "two streamed deltas: {transcript}");

    // Churn 1 (fresh overlay, installs only) certifies with zero symbolic
    // work and a clean naive order.
    let first = &records[0];
    assert_eq!(first.report.verdict, DeltaVerdict::Certified);
    assert!(first.report.structural, "install-only delta is structural");

    // Churn 2 (remove + install in one event): the proposed MBB schedule
    // certifies, but the naive differ ordering transiently blackholes the
    // tag A's border router still emits.
    let second = &records[1];
    assert_eq!(second.report.verdict, DeltaVerdict::Certified);
    assert!(
        second.report.violations.is_empty(),
        "proposed schedule is safe: {:?}",
        second.report.violations
    );
    let blackhole = second
        .report
        .naive_violations
        .iter()
        .find(|v| v.kind == ViolationKind::Blackhole)
        .unwrap_or_else(|| {
            panic!(
                "expected a naive-order blackhole, got {:?}",
                second.report.naive_violations
            )
        });
    assert_eq!(blackhole.sender, 1, "A's in-flight traffic is harmed");
    assert!(
        blackhole.step_desc.contains("remove"),
        "the naive order dies on a removal step: {}",
        blackhole.step_desc
    );
    let witness = blackhole.witness.as_ref().expect("blackhole has a witness");
    let dst = witness.dst_ip().expect("witness has a destination");
    assert_eq!(
        dst.octets()[0],
        20,
        "witness hits the re-homed prefix: {dst}"
    );

    // The transcript surfaces the evidence and the installed (checked)
    // schedule converges on the new best route.
    assert!(transcript.contains("naive-order blackhole"), "{transcript}");
    let last_send = transcript.rfind("send:").map(|i| &transcript[i..]);
    assert_eq!(
        last_send,
        Some("send: delivered to B port 2\n"),
        "{transcript}"
    );
}

#[test]
fn inconsistent_fixture_installs_under_deny() {
    // Deny blocks only unsafe deltas. Every delta in the fixture has a
    // certified schedule, so nothing is vetoed and forwarding converges
    // exactly as in warn mode.
    let script = fixture("delta-inconsistent.sdx");
    let (transcript, records) =
        run_scenario_delta(delta_options(AnalysisMode::Deny), &script).unwrap();
    assert_eq!(records.len(), 2);
    assert!(
        records
            .iter()
            .all(|r| r.report.verdict == DeltaVerdict::Certified),
        "{transcript}"
    );
    assert!(
        !transcript.contains("reoptimize needed"),
        "no delta was denied: {transcript}"
    );
    assert!(
        transcript.ends_with("send: delivered to B port 2\n"),
        "{transcript}"
    );
}
