//! Cross-crate integration tests: the full SDX stack driven end to end —
//! BGP wire messages into the route server, generated workloads through the
//! compiler, and packets through the compiled fabric.

use std::net::Ipv4Addr;

use sdx::bgp::wire::{self, Message};
use sdx::bgp::{AsPath, Asn, PathAttributes, Session, SessionConfig, SessionState, Update};
use sdx::core::{CompileOptions, FabricSim, SdxRuntime};
use sdx::ip::Prefix;
use sdx::policy::{Field, Packet};
use sdx::workload::{generate_policies, generate_trace, IxpProfile, IxpTopology, TraceConfig};

/// A workload-sized exchange compiles and forwards with zero misdirections.
#[test]
fn generated_workload_forwards_cleanly() {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(30, 600), 17);
    let mix = generate_policies(&topology, 17);
    let mut sdx = SdxRuntime::default();
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    let stats = sdx.compile().expect("compiles");
    assert!(stats.rules > 0);

    let mut sim = FabricSim::new(sdx);
    sim.sync();

    // Fire traffic from every participant to a sample of every other
    // participant's prefixes.
    let participants: Vec<_> = topology.participants.iter().map(|p| p.id).collect();
    let mut delivered = 0usize;
    for &from in &participants {
        let own = topology.announced_by(from);
        for &to in participants.iter().take(10) {
            if from == to {
                continue;
            }
            let Some(prefix) = topology.announced_by(to).iter().next().copied() else {
                continue;
            };
            if own.contains(&prefix) {
                continue; // announcers keep their own prefixes off the fabric
            }
            let pkt = Packet::new()
                .with(Field::EthType, 0x0800u16)
                .with(Field::IpProto, 6u8)
                .with(Field::SrcIp, Ipv4Addr::new(198, 51, 100, 1))
                .with(Field::DstIp, prefix.first_addr())
                .with(Field::SrcPort, 40_000u16)
                .with(Field::DstPort, 60_000u16); // avoid policy ports
            delivered += sim.send_from(from, pkt).len();
        }
    }
    assert!(delivered > 100, "only {delivered} deliveries");
    let stats = sim.runtime().switch().stats();
    assert_eq!(stats.misdirected, 0);
    assert_eq!(stats.bad_ingress, 0);
}

/// Default forwarding delivers to the participant the route server picked.
#[test]
fn default_forwarding_agrees_with_route_server() {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(20, 400), 23);
    let mut sdx = SdxRuntime::default();
    topology.install(&mut sdx);
    // No policies at all: everything follows BGP.
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.sync();

    let sender = topology.participants[0].id;
    let own = topology.announced_by(sender);
    for announcement in topology.announcements.iter().take(15) {
        let Some(prefix) = announcement.prefixes.first() else {
            continue;
        };
        if own.contains(prefix) {
            continue;
        }
        let expect = sim
            .runtime()
            .route_server()
            .best_route(prefix, sender.peer())
            .map(|c| c.peer);
        let pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 17u8)
            .with(Field::SrcIp, Ipv4Addr::new(198, 51, 100, 9))
            .with(Field::DstIp, prefix.first_addr())
            .with(Field::SrcPort, 1u16)
            .with(Field::DstPort, 2u16);
        let out = sim.send_from(sender, pkt);
        match expect {
            Some(peer) => {
                assert_eq!(out.len(), 1, "{prefix}");
                assert_eq!(out[0].to.peer(), peer, "{prefix}");
            }
            None => assert!(out.is_empty(), "{prefix}"),
        }
    }
}

/// A trace of BGP updates keeps forwarding consistent with the route
/// server's evolving view, through the fast path and reoptimization.
#[test]
fn update_trace_keeps_dataplane_in_sync() {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(15, 200), 29);
    let mut sdx = SdxRuntime::default();
    topology.install(&mut sdx);
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.sync();

    let trace = generate_trace(
        &topology,
        TraceConfig {
            duration_s: 7_200,
            unstable_fraction: 0.5,
            ..Default::default()
        },
        31,
    );
    let sender = topology.participants[2].id;
    let mut checked = 0;
    for (i, event) in trace.events.iter().enumerate() {
        sim.runtime_mut().apply_update(event.from, &event.update);
        sim.sync();
        // Every 10 events, verify a touched prefix forwards to its current
        // best route.
        if i % 10 != 0 {
            continue;
        }
        let Some(prefix) = event.update.touched_prefixes().next().copied() else {
            continue;
        };
        if sim
            .runtime()
            .route_server()
            .announced_by(sender.peer())
            .contains(&prefix)
        {
            continue;
        }
        let expect = sim
            .runtime()
            .route_server()
            .best_route(&prefix, sender.peer())
            .map(|c| c.peer);
        let pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 17u8)
            .with(Field::SrcIp, Ipv4Addr::new(198, 51, 100, 9))
            .with(Field::DstIp, prefix.first_addr())
            .with(Field::SrcPort, 1u16)
            .with(Field::DstPort, 2u16);
        let out = sim.send_from(sender, pkt);
        match expect {
            Some(peer) if peer != sender.peer() => {
                assert_eq!(out.len(), 1, "event {i}, prefix {prefix}");
                assert_eq!(out[0].to.peer(), peer, "event {i}, prefix {prefix}");
                checked += 1;
            }
            _ => {}
        }
    }
    assert!(checked > 5, "only {checked} checks exercised");

    // Background reoptimization coalesces overlays without changing behavior.
    sim.runtime_mut().reoptimize().unwrap();
    assert!(sim.runtime().overlays().is_empty());
}

/// BGP wire messages survive the full encode → stream → decode → route
/// server path.
#[test]
fn wire_messages_drive_the_route_server() {
    let update = Update::announce(
        ["203.0.113.0/24".parse::<Prefix>().unwrap()],
        PathAttributes::new(AsPath::sequence([65002, 3356]), Ipv4Addr::new(10, 0, 0, 2)),
    );
    // Encode on the "router" side.
    let bytes = wire::encode(&Message::Update(update.clone()));
    // Decode on the route-server side.
    let (decoded, _) = wire::decode(&bytes).unwrap();
    let Message::Update(got) = decoded else {
        panic!("wrong message type");
    };
    assert_eq!(got, update);

    let mut sdx = SdxRuntime::default();
    let a = sdx::core::ParticipantId(1);
    let b = sdx::core::ParticipantId(2);
    sdx.add_participant(sdx::core::Participant::new(
        a,
        Asn(65001),
        vec![sdx::core::PortConfig {
            port: 1,
            mac: sdx::ip::MacAddr::from_u64(1),
            ip: Ipv4Addr::new(172, 0, 0, 1),
        }],
    ));
    sdx.add_participant(sdx::core::Participant::new(
        b,
        Asn(65002),
        vec![sdx::core::PortConfig {
            port: 2,
            mac: sdx::ip::MacAddr::from_u64(2),
            ip: Ipv4Addr::new(172, 0, 0, 2),
        }],
    ));
    sdx.apply_update(b, &got);
    let best = sdx
        .route_server()
        .best_route(&"203.0.113.0/24".parse().unwrap(), a.peer())
        .unwrap();
    assert_eq!(best.peer, b.peer());
}

/// Two BGP session FSMs, wired over the in-memory transport, reach
/// Established and deliver an update that then lands in a route server.
#[test]
fn session_fsm_feeds_route_server() {
    let mut router = Session::new(SessionConfig {
        asn: Asn(65002),
        router_id: sdx::bgp::RouterId(2),
        hold_time: 90,
    });
    let mut server = Session::new(SessionConfig {
        asn: Asn(64512),
        router_id: sdx::bgp::RouterId(1),
        hold_time: 90,
    });
    let (mut re, mut se) = sdx::bgp::session::pipe();

    let update = Update::announce(
        ["198.18.0.0/15".parse::<Prefix>().unwrap()],
        PathAttributes::new(AsPath::sequence([65002]), Ipv4Addr::new(10, 0, 0, 2)),
    );
    let (_, delivered_to_server) = sdx::bgp::session::run_pair(
        &mut router,
        &mut server,
        &mut re,
        &mut se,
        vec![update.clone()],
        Vec::new(),
    );
    assert_eq!(router.state(), SessionState::Established);
    assert_eq!(server.state(), SessionState::Established);
    assert_eq!(delivered_to_server, vec![update.clone()]);

    let mut rs = sdx::bgp::RouteServer::new();
    rs.add_peer(sdx::bgp::PeerId(2), Asn(65002), sdx::bgp::RouterId(2));
    rs.add_peer(sdx::bgp::PeerId(3), Asn(65003), sdx::bgp::RouterId(3));
    for u in delivered_to_server {
        rs.apply_update(sdx::bgp::PeerId(2), &u);
    }
    assert!(rs
        .best_route(&"198.18.0.0/15".parse().unwrap(), sdx::bgp::PeerId(3))
        .is_some());
}

/// Naive (no-VNH) compilation forwards identically on a generated workload.
#[test]
fn vnh_optimization_is_semantically_transparent() {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(12, 150), 37);
    let mix = generate_policies(&topology, 37);

    let build = |options: CompileOptions| {
        let mut sdx = SdxRuntime::new(options);
        topology.install(&mut sdx);
        for (id, policy) in &mix.policies {
            sdx.set_policy(*id, policy.clone());
        }
        sdx.compile().unwrap();
        let mut sim = FabricSim::new(sdx);
        sim.sync();
        sim
    };
    let mut vnh = build(CompileOptions::default());
    let mut naive = build(CompileOptions {
        use_vnh: false,
        ..Default::default()
    });

    let participants: Vec<_> = topology.participants.iter().map(|p| p.id).collect();
    for &from in participants.iter().take(6) {
        let own = topology.announced_by(from);
        for &to in &participants {
            if from == to {
                continue;
            }
            let Some(prefix) = topology.announced_by(to).iter().next().copied() else {
                continue;
            };
            if own.contains(&prefix) {
                continue;
            }
            for dport in [80u16, 443, 12345] {
                let pkt = Packet::new()
                    .with(Field::EthType, 0x0800u16)
                    .with(Field::IpProto, 6u8)
                    .with(Field::SrcIp, Ipv4Addr::new(198, 51, 100, 1))
                    .with(Field::DstIp, prefix.first_addr())
                    .with(Field::SrcPort, 4_000u16)
                    .with(Field::DstPort, dport);
                let a: Vec<_> = vnh
                    .send_from(from, pkt.clone())
                    .into_iter()
                    .map(|d| (d.to, d.port))
                    .collect();
                let b: Vec<_> = naive
                    .send_from(from, pkt)
                    .into_iter()
                    .map(|d| (d.to, d.port))
                    .collect();
                assert_eq!(a, b, "{from} -> {prefix} :{dport}");
            }
        }
    }
}
