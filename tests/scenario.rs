//! Tests for the `sdx-cli` scenario language.

use sdx::scenario::run_scenario;

const BASE: &str = r#"
participant A asn 100 port 1 mac 02:00:00:00:00:01 ip 172.0.0.1
participant B asn 200 port 2 mac 02:00:00:00:00:02 ip 172.0.0.2
participant C asn 300 port 3 mac 02:00:00:00:00:03 ip 172.0.0.3
announce B 20.0.0.0/8 path 200,65001 nexthop 172.0.0.2
announce C 20.0.0.0/8 path 300 nexthop 172.0.0.3
policy A outbound match dstport=80 fwd B
compile
"#;

#[test]
fn quickstart_scenario_forwards_correctly() {
    let script = format!(
        "{BASE}\nsend A src 10.0.0.1 dst 20.0.0.1 dstport 80\nsend A src 10.0.0.1 dst 20.0.0.1 dstport 22\n"
    );
    let out = run_scenario(&script).unwrap();
    assert!(out.contains("compiled:"), "{out}");
    let lines: Vec<&str> = out.lines().filter(|l| l.starts_with("send:")).collect();
    assert_eq!(lines.len(), 2, "{out}");
    assert!(lines[0].contains("delivered to B"), "{out}");
    assert!(lines[1].contains("delivered to C"), "{out}");
}

#[test]
fn groups_and_advertisements_render() {
    let script = format!("{BASE}\ngroups\nadvertisements A\n");
    let out = run_scenario(&script).unwrap();
    assert!(out.contains("group 0: vnh 172.16."), "{out}");
    assert!(
        out.contains("advertise 20.0.0.0/8 nexthop 172.16."),
        "{out}"
    );
}

#[test]
fn withdraw_shifts_forwarding() {
    let script =
        format!("{BASE}\nwithdraw B 20.0.0.0/8\nsend A src 10.0.0.1 dst 20.0.0.1 dstport 80\n");
    let out = run_scenario(&script).unwrap();
    // B no longer exports 20/8, so even web traffic follows the default (C).
    assert!(
        out.lines().last().unwrap().contains("delivered to C"),
        "{out}"
    );
}

#[test]
fn deny_export_respected() {
    let script = format!(
        "{BASE}\ndeny-export B 20.0.0.0/8 to A\ncompile\nsend A src 10.0.0.1 dst 20.0.0.1 dstport 80\n"
    );
    let out = run_scenario(&script).unwrap();
    assert!(
        out.lines().last().unwrap().contains("delivered to C"),
        "{out}"
    );
}

#[test]
fn inbound_policy_and_rewrite() {
    let script = r#"
participant A asn 100 port 1 mac 02:00:00:00:00:01 ip 172.0.0.1
participant B asn 200 port 2 mac 02:00:00:00:00:02 ip 172.0.0.2 port 3 mac 02:00:00:00:00:03 ip 172.0.0.3
announce B 20.0.0.0/8 path 200 nexthop 172.0.0.2
policy B inbound match srcip=0.0.0.0/1 port 2
policy B inbound match srcip=128.0.0.0/1 port 3
compile
send A src 10.0.0.1 dst 20.0.0.1 dstport 80
send A src 200.0.0.1 dst 20.0.0.1 dstport 80
"#;
    let out = run_scenario(script).unwrap();
    let sends: Vec<&str> = out.lines().filter(|l| l.starts_with("send:")).collect();
    assert!(sends[0].contains("port 2"), "{out}");
    assert!(sends[1].contains("port 3"), "{out}");
}

#[test]
fn errors_carry_line_numbers() {
    let err = run_scenario("participant A asn 100\nbogus command\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("bogus"));

    let err = run_scenario("send A src 1.2.3.4 dst 5.6.7.8\n").unwrap_err();
    assert_eq!(err.line, 1);

    let err = run_scenario("policy X outbound match dstport=80 fwd Y\n").unwrap_err();
    assert!(err.message.contains("unknown participant"), "{err}");
}

#[test]
fn committed_figure1_scenario_runs() {
    let script = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/figure1.sdx"
    ))
    .expect("scenario file exists");
    let out = run_scenario(&script).unwrap();
    assert!(out.contains("compiled:"), "{out}");
    assert!(out.contains("delivered to B port 2"), "{out}");
    assert!(out.contains("delivered to B port 3"), "{out}");
    // After B withdraws p3, the final send lands on C.
    assert!(out.trim_end().ends_with("delivered to C port 4"), "{out}");
}
