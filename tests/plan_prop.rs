//! Properties of the update planner on randomized churn:
//!
//! 1. **Delta round-trip** — applying the rule-level delta step-by-step to
//!    a live [`FlowTable`] holding the old state yields a table whose
//!    content fingerprint equals a fresh wholesale install of the new
//!    state, for any step order consistent with the delta (the naive order
//!    and the synthesized schedule both).
//! 2. **Per-packet consistency of synthesized schedules** — replaying a
//!    synthesized schedule on live tables, no producible probe packet ever
//!    observes an outcome outside the union of the old and new behaviors
//!    at any intermediate state (pre-barrier), and sees exactly the new
//!    behavior once the routers have flipped (post-barrier).

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdx::core::{
    AnalysisMode, Clause, CompileOptions, Participant, ParticipantId, ParticipantPolicy,
    PortConfig, SdxRuntime,
};
use sdx::switch::FlowTable;
use sdx_bgp::{AsPath, Asn, PathAttributes};
use sdx_ip::Prefix;
use sdx_plan::{diff, state_of_classifier, DeltaOp, PlanStep, TableState};
use sdx_policy::{match_, Classifier, Field, Packet, Rule};

const PREFIXES: [&str; 5] = [
    "10.0.0.0/8",
    "20.0.0.0/8",
    "30.0.0.0/8",
    "40.1.0.0/16",
    "50.2.0.0/16",
];
const PORTS: [u16; 3] = [80, 22, 443];
const COOKIE: u64 = 7;

fn port(n: u32) -> PortConfig {
    PortConfig {
        port: n,
        mac: format!("02:00:00:00:00:{n:02x}").parse().unwrap(),
        ip: Ipv4Addr::new(172, 0, 0, n as u8),
    }
}

fn attrs(id: ParticipantId) -> PathAttributes {
    PathAttributes::new(
        AsPath::sequence([65000 + id.0]),
        Ipv4Addr::new(172, 0, 0, id.0 as u8),
    )
}

/// A compiled random fabric: 2–4 participants, random announcements and
/// outbound clauses (filtered, unfiltered, and drop).
fn random_fabric(rng: &mut StdRng, options: CompileOptions) -> Option<SdxRuntime> {
    let n = rng.gen_range(2..=4u32);
    let mut sdx = SdxRuntime::new(options);
    let ids: Vec<ParticipantId> = (1..=n).map(ParticipantId).collect();
    for &id in &ids {
        sdx.add_participant(Participant::new(id, Asn(65000 + id.0), vec![port(id.0)]));
    }
    for &id in &ids {
        for p in PREFIXES {
            if rng.gen_bool(0.4) {
                sdx.announce(id, [p.parse::<Prefix>().unwrap()], attrs(id));
            }
        }
    }
    for &id in &ids {
        let mut policy = ParticipantPolicy::new();
        for _ in 0..rng.gen_range(0..=2) {
            let dp = PORTS[rng.gen_range(0..PORTS.len())];
            let to = ids[rng.gen_range(0..ids.len())];
            let clause = if rng.gen_bool(0.2) {
                Clause::drop(match_(Field::DstPort, dp))
            } else if rng.gen_bool(0.15) {
                Clause::fwd(match_(Field::DstPort, dp), to).unfiltered()
            } else {
                Clause::fwd(match_(Field::DstPort, dp), to)
            };
            policy = policy.outbound(clause);
        }
        sdx.set_policy(id, policy);
    }
    sdx.compile().ok()?;
    Some(sdx)
}

/// Random BGP churn: 1–3 announce/withdraw events.
fn churn(rng: &mut StdRng, sdx: &mut SdxRuntime, n_participants: u32) {
    for _ in 0..rng.gen_range(1..=3) {
        let id = ParticipantId(rng.gen_range(1..=n_participants));
        let p: Prefix = PREFIXES[rng.gen_range(0..PREFIXES.len())].parse().unwrap();
        if rng.gen_bool(0.5) {
            sdx.withdraw(id, [p]);
        } else {
            sdx.announce(id, [p], attrs(id));
        }
    }
}

/// Install the classifier wholesale into a fresh table (the reference).
fn fresh_table(c: &Classifier) -> FlowTable {
    let mut t = FlowTable::new();
    t.install_classifier(c, COOKIE);
    t
}

/// Apply one plan step to live tables.
fn apply_step(tables: &mut [FlowTable], step: &PlanStep) {
    let table = &mut tables[step.table];
    match step.op {
        DeltaOp::Install => table.install(step.rule.to_flow_rule(COOKIE)),
        DeltaOp::Remove => {
            table.remove_matching(&step.rule.to_flow_rule(COOKIE));
        }
    }
}

/// The live tables as classifiers, for outcome evaluation.
fn classifiers_of(tables: &[FlowTable]) -> Vec<Classifier> {
    tables
        .iter()
        .map(|t| {
            Classifier::new(
                t.rules()
                    .iter()
                    .map(|r| Rule {
                        match_: r.match_.clone(),
                        actions: r.actions.clone(),
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Applying the delta to a live table reproduces the fresh install
/// fingerprint — in naive differ order and in synthesized-schedule order.
#[test]
fn delta_roundtrip_matches_fresh_install() {
    let mut rng = StdRng::seed_from_u64(0x9_1a2b);
    let mut fabrics = 0usize;
    let mut nonempty = 0usize;
    while fabrics < 48 {
        let Some(mut sdx) = random_fabric(
            &mut rng,
            CompileOptions {
                plan: AnalysisMode::Warn,
                ..Default::default()
            },
        ) else {
            continue;
        };
        fabrics += 1;
        let n = sdx.verify_input().expect("compiled").participants.len() as u32;
        let vi1 = sdx.verify_input().expect("compiled fabric");
        let old_states: Vec<TableState> = vi1
            .tables
            .iter()
            .map(|c| state_of_classifier(c, None))
            .collect();

        churn(&mut rng, &mut sdx, n);
        if sdx.compile().is_err() {
            continue;
        }
        let vi2 = sdx.verify_input().expect("recompiled fabric");
        if vi1.tables.len() != vi2.tables.len() {
            continue;
        }
        let new_states: Vec<TableState> = vi2
            .tables
            .iter()
            .map(|c| state_of_classifier(c, None))
            .collect();

        let steps = diff(&old_states, &new_states);
        if !steps.is_empty() {
            nonempty += 1;
        }

        let reference: Vec<FlowTable> = vi2.tables.iter().map(fresh_table).collect();
        // Naive differ order.
        let mut live: Vec<FlowTable> = vi1.tables.iter().map(fresh_table).collect();
        for step in &steps {
            apply_step(&mut live, step);
        }
        for (i, (l, r)) in live.iter().zip(&reference).enumerate() {
            assert_eq!(
                l.fingerprint(),
                r.fingerprint(),
                "fabric {fabrics} table {i}: naive-order delta diverged"
            );
        }
        // Synthesized-schedule order, when the runtime produced one.
        if let Some(schedule) = sdx.last_plan().and_then(|r| r.schedule.as_ref()) {
            let mut live: Vec<FlowTable> = vi1.tables.iter().map(fresh_table).collect();
            for step in &schedule.order {
                apply_step(&mut live, step);
            }
            // The runtime's own delta ran against its *installed* state
            // (overlays included), so only compare when the step sets agree.
            let mut a: Vec<String> = steps.iter().map(|s| s.to_string()).collect();
            let mut b: Vec<String> = schedule.order.iter().map(|s| s.to_string()).collect();
            a.sort();
            b.sort();
            if a == b {
                for (i, (l, r)) in live.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        l.fingerprint(),
                        r.fingerprint(),
                        "fabric {fabrics} table {i}: scheduled delta diverged"
                    );
                }
            }
        }
    }
    assert!(nonempty >= 12, "only {nonempty} non-empty deltas sampled");
}

/// Probe packets for one FIB generation: every (sender port, tag, prefix)
/// with a spread of destination ports.
fn probes(vi: &sdx::core::VerifyInput, rng: &mut StdRng) -> Vec<(u32, Packet)> {
    let mut out = Vec::new();
    for fib in &vi.fibs {
        let ports: Vec<u32> = vi
            .participants
            .iter()
            .find(|(id, _)| *id == fib.participant)
            .map(|(_, p)| p.clone())
            .unwrap_or_default();
        for e in &fib.entries {
            let Some(mac) = e.mac else { continue };
            for &p in &ports {
                for &dp in &PORTS {
                    let off = rng.gen::<u32>() & (u32::MAX >> e.prefix.len());
                    let dst = Ipv4Addr::from(u32::from(e.prefix.addr()) | off);
                    out.push((
                        fib.participant,
                        Packet::new()
                            .with(Field::Port, p)
                            .with(Field::DstMac, mac)
                            .with(Field::DstIp, dst)
                            .with(Field::DstPort, dp),
                    ));
                }
            }
        }
    }
    out
}

fn outcome(tables: &[Classifier], pkt: &Packet) -> BTreeSet<Packet> {
    let mut cur: BTreeSet<Packet> = [pkt.clone()].into();
    for t in tables {
        cur = cur.iter().flat_map(|p| t.evaluate(p)).collect();
        if cur.is_empty() {
            break;
        }
    }
    cur
}

/// Replaying the synthesized schedule, every intermediate lookup outcome of
/// a producible probe stays within the union of old and new behaviors.
#[test]
fn synthesized_plan_probes_stay_within_old_and_new() {
    let mut rng = StdRng::seed_from_u64(0x1a2_b01d);
    let mut checked_probes = 0usize;
    let mut fabrics = 0usize;
    while checked_probes < 1000 && fabrics < 64 {
        let Some(mut sdx) = random_fabric(
            &mut rng,
            CompileOptions {
                plan: AnalysisMode::Warn,
                ..Default::default()
            },
        ) else {
            continue;
        };
        let n = sdx.verify_input().expect("compiled").participants.len() as u32;

        // Mirror the runtime's capture points: old = the live pre-recompile
        // view (post-churn overlays included), new = the recompiled state.
        churn(&mut rng, &mut sdx, n);
        let vi_old = sdx.verify_input().expect("live view");
        if sdx.compile().is_err() {
            continue;
        }
        let Some(report) = sdx.last_plan() else {
            continue;
        };
        let Some(schedule) = report.schedule.clone() else {
            continue;
        };
        let vi_new = sdx.verify_input().expect("recompiled view");
        if vi_old.tables.len() != vi_new.tables.len() {
            continue;
        }
        fabrics += 1;

        let old_probes = probes(&vi_old, &mut rng);
        let new_probes = probes(&vi_new, &mut rng);
        // Keep the replay honest: start from the runtime's own delta base.
        let mut live: Vec<FlowTable> = vi_old.tables.iter().map(fresh_table).collect();
        // The runtime's schedule was computed against its installed tables;
        // replay only when the schedule's removals all resolve here.
        let ok = schedule
            .order
            .iter()
            .filter(|s| s.op == DeltaOp::Remove)
            .all(|s| {
                live.get(s.table)
                    .map(|t| {
                        let flow = s.rule.to_flow_rule(COOKIE);
                        t.rules().iter().any(|r| {
                            r.priority == flow.priority
                                && r.match_ == flow.match_
                                && r.actions == flow.actions
                        })
                    })
                    .unwrap_or(false)
            });
        if !ok {
            continue;
        }

        for (i, step) in schedule.order.iter().enumerate() {
            apply_step(&mut live, step);
            let mid_tables = classifiers_of(&live);
            if i < schedule.barrier {
                // Pre-barrier: routers still emit the old generation.
                for (sender, pkt) in &old_probes {
                    let mid = outcome(&mid_tables, pkt);
                    let old = outcome(&vi_old.tables, pkt);
                    let new = outcome(&vi_new.tables, pkt);
                    let new_produces = vi_new.fibs.iter().any(|f| {
                        f.participant == *sender
                            && f.entries.iter().any(|e| {
                                e.mac == pkt.get(Field::DstMac)
                                    && pkt
                                        .dst_ip()
                                        .map(|ip| e.prefix.contains_addr(ip))
                                        .unwrap_or(false)
                            })
                    });
                    assert!(
                        mid == old || (new_produces && mid == new),
                        "fabric {fabrics} step {i} ({step}): probe {pkt} from P{sender} \
                         saw {mid:?}, outside old {old:?} / new {new:?}"
                    );
                    checked_probes += 1;
                }
            } else {
                // Post-barrier: the new generation must see exactly the new
                // behavior.
                for (_, pkt) in &new_probes {
                    let mid = outcome(&mid_tables, pkt);
                    let new = outcome(&vi_new.tables, pkt);
                    assert_eq!(
                        mid, new,
                        "fabric {fabrics} step {i} ({step}): post-barrier probe {pkt} \
                         diverged from the new behavior"
                    );
                    checked_probes += 1;
                }
            }
        }
    }
    assert!(
        checked_probes >= 1000,
        "checked only {checked_probes} probes across {fabrics} fabrics"
    );
}
