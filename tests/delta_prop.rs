//! Soundness of the incremental delta-safety verifier on randomized
//! streamed churn: for every checked delta, the persistent checker's
//! verdict (warm partition cache, restricted universe, structural gate)
//! must be identical to a from-scratch header-space check of the same
//! event over the full universe with a cold cache — verdict, synthesized
//! schedule, and witness content alike.
//!
//! The runtime's own sampling oracle does the comparison
//! ([`DeltaReport::agrees_with`]); with the sample interval at 1 every
//! single streamed event is cross-checked. The fabric/churn generators
//! mirror `plan_prop.rs` but drive [`SdxRuntime::apply_update_delta`]
//! (the streamed fast path) instead of recompiles, with path lengths
//! randomized so best routes genuinely flip — remove + install in one
//! event — rather than only grow.

use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdx::core::{
    AnalysisMode, Clause, CompileOptions, DeltaVerdict, Participant, ParticipantId,
    ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx_bgp::{AsPath, Asn, PathAttributes, Update};
use sdx_ip::Prefix;
use sdx_policy::{match_, Field};

const PREFIXES: [&str; 5] = [
    "10.0.0.0/8",
    "20.0.0.0/8",
    "30.0.0.0/8",
    "40.1.0.0/16",
    "50.2.0.0/16",
];
const PORTS: [u16; 3] = [80, 22, 443];

fn port(n: u32) -> PortConfig {
    PortConfig {
        port: n,
        mac: format!("02:00:00:00:00:{n:02x}").parse().unwrap(),
        ip: Ipv4Addr::new(172, 0, 0, n as u8),
    }
}

/// Path attributes with a randomized AS-path length (1–4 hops), so a
/// re-announcement can beat — or lose to — the incumbent best route.
fn attrs(rng: &mut StdRng, id: ParticipantId) -> PathAttributes {
    let hops = rng.gen_range(1..=4usize);
    let mut path = vec![65000 + id.0];
    for h in 0..hops - 1 {
        path.push(65100 + h as u32);
    }
    PathAttributes::new(AsPath::sequence(path), Ipv4Addr::new(172, 0, 0, id.0 as u8))
}

/// A compiled random fabric with the streamed delta checker on.
fn random_fabric(rng: &mut StdRng, options: CompileOptions) -> Option<SdxRuntime> {
    let n = rng.gen_range(2..=4u32);
    let mut sdx = SdxRuntime::new(options);
    let ids: Vec<ParticipantId> = (1..=n).map(ParticipantId).collect();
    for &id in &ids {
        sdx.add_participant(Participant::new(id, Asn(65000 + id.0), vec![port(id.0)]));
    }
    for &id in &ids {
        for p in PREFIXES {
            if rng.gen_bool(0.4) {
                let a = attrs(rng, id);
                sdx.announce(id, [p.parse::<Prefix>().unwrap()], a);
            }
        }
    }
    for &id in &ids {
        let mut policy = ParticipantPolicy::new();
        for _ in 0..rng.gen_range(0..=2) {
            let dp = PORTS[rng.gen_range(0..PORTS.len())];
            let to = ids[rng.gen_range(0..ids.len())];
            let clause = if rng.gen_bool(0.2) {
                Clause::drop(match_(Field::DstPort, dp))
            } else if rng.gen_bool(0.15) {
                Clause::fwd(match_(Field::DstPort, dp), to).unfiltered()
            } else {
                Clause::fwd(match_(Field::DstPort, dp), to)
            };
            policy = policy.outbound(clause);
        }
        sdx.set_policy(id, policy);
    }
    sdx.compile().ok()?;
    Some(sdx)
}

/// Every streamed delta's incremental verdict is bit-identical to the
/// from-scratch oracle's, across ≥32 random fabrics under random churn.
#[test]
fn incremental_verdicts_match_from_scratch_oracle() {
    let mut rng = StdRng::seed_from_u64(0x000d_e17a_c4ec);
    let mut fabrics = 0usize;
    let mut checked = 0usize;
    let mut flips = 0usize;
    while fabrics < 32 {
        let Some(mut sdx) = random_fabric(
            &mut rng,
            CompileOptions {
                delta_check: AnalysisMode::Warn,
                ..Default::default()
            },
        ) else {
            continue;
        };
        fabrics += 1;
        // Cross-check *every* event against the from-scratch pipeline and
        // keep every record.
        sdx.set_delta_check_sample(1);
        sdx.set_delta_log_limit(1024);

        let n = sdx.verify_input().expect("compiled").participants.len() as u32;
        for _ in 0..rng.gen_range(4..=8) {
            let id = ParticipantId(rng.gen_range(1..=n));
            let p: Prefix = PREFIXES[rng.gen_range(0..PREFIXES.len())].parse().unwrap();
            let update = if rng.gen_bool(0.35) {
                Update::withdraw([p])
            } else {
                let a = attrs(&mut rng, id);
                Update::announce([p], a)
            };
            let (_, delta) = sdx.apply_update_delta(id, &update);
            if delta.installed > 0 && delta.removed > 0 {
                flips += 1; // remove + install in one event
            }
        }

        let records = sdx.delta_log();
        let stats = sdx.incremental_stats();
        assert_eq!(
            records.len() as u64,
            stats.delta_checked,
            "fabric {fabrics}: the log must cover every checked event"
        );
        for r in records {
            checked += 1;
            assert_eq!(
                r.agreed,
                Some(true),
                "fabric {fabrics}, prefix {}: incremental verdict {:?} \
                 (structural={}) disagrees with from-scratch {:?}",
                r.prefix,
                r.report.verdict,
                r.report.structural,
                r.from_scratch.as_ref().map(|f| f.verdict),
            );
            assert_ne!(
                r.report.verdict,
                DeltaVerdict::Rejected,
                "fabric {fabrics}: MBB streamed schedules never reject"
            );
        }
    }
    assert!(checked >= 64, "only {checked} events cross-checked");
    assert!(flips >= 8, "only {flips} remove+install flips exercised");
}

/// Deny-mode recovery, end to end. MBB fast-path schedules are
/// structurally safe by construction, so the deny path is exercised with
/// the fault-injection hook: the denied delta must install nothing, flag a
/// reoptimize, hand its count to the recovering compile
/// (`delta_deny_fallbacks`, reset afterwards), and streamed churn must
/// keep installing against the re-based priority band after the recompile.
#[test]
fn forced_deny_falls_back_to_reoptimize_and_recovers() {
    let mut rng = StdRng::seed_from_u64(0x00de_4a11);
    let mut sdx = loop {
        let fabric = random_fabric(
            &mut rng,
            CompileOptions {
                delta_check: AnalysisMode::Deny,
                ..Default::default()
            },
        );
        if let Some(s) = fabric {
            break s;
        }
    };
    let n = sdx.verify_input().expect("compiled").participants.len() as u32;
    let churn_until_install = |sdx: &mut SdxRuntime, rng: &mut StdRng| loop {
        let id = ParticipantId(rng.gen_range(1..=n));
        let p: Prefix = PREFIXES[rng.gen_range(0..PREFIXES.len())].parse().unwrap();
        let a = attrs(rng, id);
        let (_, delta) = sdx.apply_update_delta(id, &Update::announce([p], a));
        if delta.installed > 0 {
            return delta;
        }
    };

    // Healthy churn first: streamed installs certify and go in.
    churn_until_install(&mut sdx, &mut rng);
    let before = sdx.incremental_stats();
    assert_eq!(before.delta_denied, 0);
    assert!(before.delta_checked > 0);
    assert!(!sdx.needs_reoptimize());

    // Arm the fault and churn until a checked delta hits the deny path.
    sdx.inject_delta_deny(1);
    let denied_install = loop {
        let id = ParticipantId(rng.gen_range(1..=n));
        let p: Prefix = PREFIXES[rng.gen_range(0..PREFIXES.len())].parse().unwrap();
        let a = attrs(&mut rng, id);
        let (_, delta) = sdx.apply_update_delta(id, &Update::announce([p], a));
        if sdx.incremental_stats().delta_denied > 0 {
            break delta;
        }
    };
    assert_eq!(
        denied_install,
        Default::default(),
        "a denied delta must not touch the tables"
    );
    assert!(
        sdx.needs_reoptimize(),
        "deny must schedule the recovery compile"
    );

    // The recovering compile reports the deny window and resets it.
    let stats = sdx.reoptimize().expect("recovery reoptimize");
    assert_eq!(stats.delta_deny_fallbacks, 1);
    assert!(!sdx.needs_reoptimize());

    // Post-recovery churn still installs (the delta priority band was
    // re-based on the fresh tables), and the next compile stamps a clean
    // window.
    churn_until_install(&mut sdx, &mut rng);
    assert_eq!(sdx.incremental_stats().delta_denied, 1, "no further denies");
    let stats = sdx.reoptimize().expect("second reoptimize");
    assert_eq!(stats.delta_deny_fallbacks, 0, "the deny window must reset");
}
