//! Tests for the `sdx-lint` engine: scenarios run under an analysis mode via
//! [`sdx::scenario::run_scenario_with`], including the shipped seeded-defect
//! fixtures in `scenarios/`.

use sdx::core::{AnalysisMode, CompileOptions, Severity};
use sdx::scenario::run_scenario_with;

fn options(mode: AnalysisMode) -> CompileOptions {
    CompileOptions {
        analysis: mode,
        ..Default::default()
    }
}

fn verify_options(mode: AnalysisMode) -> CompileOptions {
    CompileOptions {
        analysis: mode,
        verify: mode,
        ..Default::default()
    }
}

fn fixture(name: &str) -> String {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn figure1_is_clean() {
    let script = fixture("figure1.sdx");
    let (_, analysis) = run_scenario_with(options(AnalysisMode::Warn), &script).unwrap();
    let analysis = analysis.expect("figure1 compiles with analysis on");
    assert_eq!(analysis.errors(), 0, "{:?}", analysis.diagnostics);
    // And deny mode does not reject the paper's own example.
    run_scenario_with(options(AnalysisMode::Deny), &script).unwrap();
}

#[test]
fn figure1_is_clean_under_reachability_verification() {
    let script = fixture("figure1.sdx");
    let (_, analysis) = run_scenario_with(verify_options(AnalysisMode::Warn), &script).unwrap();
    let analysis = analysis.expect("figure1 compiles with verification on");
    assert_eq!(analysis.errors(), 0, "{:?}", analysis.diagnostics);
    run_scenario_with(verify_options(AnalysisMode::Deny), &script).unwrap();
}

#[test]
fn isolation_fixture_needs_the_reachability_verifier() {
    // The seeded defect is invisible to the per-clause static analyzer —
    // only the whole-fabric symbolic pass catches it.
    let script = fixture("lint-isolation.sdx");
    let (_, analysis) = run_scenario_with(verify_options(AnalysisMode::Warn), &script).unwrap();
    let analysis = analysis.expect("fixture compiles in warn mode");
    let hit = analysis
        .with_code("verify-isolation")
        .next()
        .unwrap_or_else(|| {
            panic!(
                "expected a verify-isolation finding, got {:?}",
                analysis.diagnostics
            )
        });
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.witness.is_some(), "isolation findings carry a witness");

    let err = run_scenario_with(verify_options(AnalysisMode::Deny), &script)
        .expect_err("deny mode must reject the fixture");
    assert!(
        err.message.contains("reachability verification rejected")
            && err.message.contains("verify-isolation"),
        "{err}"
    );
}

#[test]
fn defect_fixtures_are_flagged_and_denied() {
    for (name, code) in [
        ("lint-shadow.sdx", "shadowed-clause"),
        ("lint-conflict.sdx", "conflicting-drop"),
        ("lint-loop.sdx", "forwarding-loop"),
    ] {
        let script = fixture(name);
        let (_, analysis) = run_scenario_with(options(AnalysisMode::Warn), &script)
            .unwrap_or_else(|e| panic!("{name} under warn: {e}"));
        let analysis = analysis.expect("fixture compiles in warn mode");
        let hit = analysis.with_code(code).next().unwrap_or_else(|| {
            panic!(
                "{name}: expected a {code} finding, got {:?}",
                analysis.diagnostics
            )
        });
        assert_eq!(hit.severity, Severity::Error, "{name}");

        let err = run_scenario_with(options(AnalysisMode::Deny), &script)
            .expect_err("deny mode must reject the fixture");
        assert!(
            err.message.contains("static analysis rejected") && err.message.contains(code),
            "{name}: {err}"
        );
    }
}

#[test]
fn analysis_is_none_without_compile() {
    let (_, analysis) = run_scenario_with(
        options(AnalysisMode::Warn),
        "participant A asn 100 port 1 mac 02:00:00:00:00:01 ip 172.0.0.1\n",
    )
    .unwrap();
    assert!(analysis.is_none());
}
