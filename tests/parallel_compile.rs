//! Output-equivalence property test for the parallel compile pipeline: over
//! randomized §6.1 workloads, compiling with 1, 2, and 8 worker threads must
//! produce rule-for-rule identical flow tables (fabric, sender stage,
//! receiver stage), identical FEC groups, and identical deterministic
//! [`CompileStats`] counters. Parallelism may only change the wall clock.

use sdx_core::{Compilation, CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies, IxpProfile, IxpTopology};

/// Build and compile one workload at a given worker count.
fn compile_at(
    participants: usize,
    prefixes: usize,
    seed: u64,
    threads: usize,
) -> (sdx_core::CompileStats, SdxRuntime) {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(participants, prefixes), seed);
    let mix = generate_policies(&topology, seed.wrapping_add(1));
    let mut sdx = SdxRuntime::new(CompileOptions::with_threads(threads));
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    let stats = sdx.compile().expect("workload compiles");
    (stats, sdx)
}

fn assert_identical(seed: u64, base: &Compilation, other: &Compilation, threads: usize) {
    let tag = format!("seed {seed}, threads {threads} vs 1");
    assert_eq!(
        base.fabric.rules(),
        other.fabric.rules(),
        "fabric rules differ: {tag}"
    );
    assert_eq!(
        base.fabric.fingerprint(),
        other.fabric.fingerprint(),
        "fabric fingerprint differs: {tag}"
    );
    assert_eq!(base.stage1, other.stage1, "sender stage differs: {tag}");
    assert_eq!(base.stage2, other.stage2, "receiver stage differs: {tag}");
    assert_eq!(base.groups, other.groups, "FEC groups differ: {tag}");
    assert_eq!(base.vnh, other.vnh, "VNH assignment differs: {tag}");
    assert_eq!(
        base.stats.counters(),
        other.stats.counters(),
        "deterministic stats counters differ: {tag}"
    );
}

#[test]
fn parallel_compile_is_bit_identical_to_sequential() {
    for seed in [7u64, 23, 91] {
        let (stats1, sdx1) = compile_at(24, 300, seed, 1);
        let base = sdx1.compilation().expect("compiled");
        assert!(stats1.rules > 0, "seed {seed}: empty fabric");
        assert_eq!(stats1.stages.threads, 1);
        for threads in [2usize, 8] {
            let (stats_n, sdx_n) = compile_at(24, 300, seed, threads);
            assert_eq!(stats_n.stages.threads, threads);
            assert_identical(seed, base, sdx_n.compilation().expect("compiled"), threads);
        }
    }
}

#[test]
fn parallel_recompile_after_update_is_identical() {
    // Recompilation exercises the memo-cache hit path under parallelism:
    // after a policy bump, only the touched participant misses.
    for threads in [2usize, 8] {
        let (_, mut sdx1) = compile_at(16, 200, 5, 1);
        let (_, mut sdx_n) = compile_at(16, 200, 5, threads);
        for sdx in [&mut sdx1, &mut sdx_n] {
            // Clearing one participant's policy bumps its version: the
            // recompilation misses the memo for it and hits for the rest.
            let id = sdx.participants().next().expect("nonempty").id;
            sdx.set_policy(id, Default::default());
            sdx.compile().expect("recompiles");
        }
        let base = sdx1.compilation().expect("compiled");
        assert_identical(5, base, sdx_n.compilation().expect("compiled"), threads);
        assert!(
            base.stats.memo_hits > 0,
            "recompilation should hit the memo cache"
        );
    }
}

#[test]
fn thread_count_zero_resolves_to_cores() {
    let (stats, _) = compile_at(12, 150, 3, 0);
    assert!(stats.stages.threads >= 1);
}
