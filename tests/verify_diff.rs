//! Differential recompile equivalence: after BGP churn through the §4.3.2
//! fast path (overlay rules, fresh VNHs), the running fabric must stay
//! packet-equivalent — modulo tag values — to a from-scratch compile. And
//! when the pipelines genuinely differ, the check must say so with a
//! confirmed witness.

use std::net::Ipv4Addr;

use sdx::core::{
    diff, Clause, CompileOptions, DiffSide, Participant, ParticipantId, ParticipantPolicy,
    PortConfig, SdxRuntime,
};
use sdx_bgp::{AsPath, Asn, PathAttributes};
use sdx_ip::Prefix;
use sdx_policy::{match_, Classifier, Field, Pattern};

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);
const C: ParticipantId = ParticipantId(3);

fn port(n: u32) -> PortConfig {
    PortConfig {
        port: n,
        mac: format!("02:00:00:00:00:{n:02x}").parse().unwrap(),
        ip: Ipv4Addr::new(172, 0, 0, n as u8),
    }
}

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn attrs(asn: u32, n: u8) -> PathAttributes {
    PathAttributes::new(AsPath::sequence([asn]), Ipv4Addr::new(172, 0, 0, n))
}

fn fabric(threads: usize, multi_table: bool) -> SdxRuntime {
    let mut sdx = SdxRuntime::new(CompileOptions {
        threads,
        multi_table,
        ..Default::default()
    });
    sdx.add_participant(Participant::new(A, Asn(65001), vec![port(1)]));
    sdx.add_participant(Participant::new(B, Asn(65002), vec![port(2)]));
    sdx.add_participant(Participant::new(C, Asn(65003), vec![port(3)]));
    sdx.announce(B, [p("20.0.0.0/8")], attrs(65002, 2));
    sdx.announce(C, [p("20.0.0.0/8"), p("30.0.0.0/8")], attrs(65003, 3));
    sdx.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
            .outbound(Clause::fwd(match_(Field::DstPort, 22u16), C)),
    );
    sdx.compile().unwrap();
    sdx
}

#[test]
fn incremental_recompile_is_equivalent_to_fresh() {
    for threads in [1usize, 4] {
        for multi_table in [false, true] {
            let mut sdx = fabric(threads, multi_table);
            // BGP churn through the fast path: a brand-new prefix, a
            // withdrawal that re-homes a shared prefix, and a replacement
            // announcement — all handled by overlays, no full recompile.
            sdx.announce(C, [p("40.0.0.0/8")], attrs(65003, 3));
            sdx.withdraw(B, [p("20.0.0.0/8")]);
            sdx.announce(B, [p("20.0.0.0/8")], attrs(65002, 2));
            assert!(
                sdx.incremental_stats().overlay_rules > 0,
                "threads={threads} multi_table={multi_table}: updates must go through the fast path"
            );

            let report = sdx
                .verify_differential()
                .expect("differential check runs after compile");
            assert!(
                report.diagnostics.is_empty(),
                "threads={threads} multi_table={multi_table}: incremental must equal fresh: {:?}",
                report.diagnostics
            );
            assert_eq!(report.undecided, 0, "small fabric must not saturate");
            // The pass's wall clock lands in the compilation's stage times.
            assert_eq!(
                sdx.compilation().unwrap().stats.stages.verify_diff_us,
                report.duration_us
            );
        }
    }
}

#[test]
fn tampered_pipeline_is_caught_with_a_confirmed_witness() {
    let sdx = fabric(1, false);
    let vi = sdx.verify_input().unwrap();
    let old = DiffSide {
        tables: vi.tables.clone(),
        fibs: vi.fibs.clone(),
    };

    // Tamper the comparison side: the first forwarding rule that matches a
    // VNH tag silently becomes a drop — the kind of divergence a buggy
    // incremental path could install.
    let vmacs: Vec<u64> = vi.groups.iter().map(|g| g.vmac).collect();
    let mut rules = vi.tables[0].rules().to_vec();
    let idx = rules
        .iter()
        .position(|r| {
            !r.actions.is_empty()
                && vmacs
                    .iter()
                    .any(|v| r.match_.get(Field::DstMac) == Some(&Pattern::Exact(*v)))
        })
        .expect("a tag-directed forwarding rule exists");
    rules[idx].actions.clear();
    let mut tampered = vec![Classifier::new(rules)];
    tampered.extend(vi.tables.iter().skip(1).cloned());
    let new = DiffSide {
        tables: tampered,
        fibs: vi.fibs.clone(),
    };

    let report = diff::run(&old, &new, &vi.participants, 1);
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == "verify-diff")
        .unwrap_or_else(|| panic!("expected verify-diff: {:?}", report.diagnostics));
    assert!(
        diag.witness.is_some(),
        "confirmed differences carry a witness"
    );
    assert!(
        diag.message.contains("disagree"),
        "message renders both outcomes: {}",
        diag.message
    );
}
