//! SDX — a Software Defined Internet Exchange.
//!
//! This facade crate re-exports the whole workspace so applications can use a
//! single dependency. See the individual crates for details:
//!
//! * [`ip`] — IPv4 prefixes, tries, sets, MAC addresses.
//! * [`policy`] — the Pyretic-style policy language and classifier compiler.
//! * [`bgp`] — BGP wire codec, RIBs, decision process, route server.
//! * [`switch`] — software switch, flow tables, ARP, border routers.
//! * [`core`] — the SDX controller and runtime.
//! * [`workload`] — synthetic IXP workloads matching the paper's evaluation.

pub mod scenario;

pub use sdx_bgp as bgp;
pub use sdx_core as core;
pub use sdx_ip as ip;
pub use sdx_policy as policy;
pub use sdx_switch as switch;
pub use sdx_workload as workload;
