//! `sdx-cli` — drive a software-defined exchange from a scenario file.
//!
//! ```bash
//! cargo run --bin sdx-cli -- scenarios/figure1.sdx
//! cat scenario.sdx | cargo run --bin sdx-cli
//! ```
//!
//! See `sdx::scenario` for the command language.

use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let input = match args.get(1).map(String::as_str) {
        Some("--help") | Some("-h") => {
            eprintln!("usage: sdx-cli [SCENARIO-FILE]   (reads stdin if no file)");
            eprintln!("commands: participant remote announce withdraw deny-export");
            eprintln!("          policy compile send table groups advertisements echo");
            return;
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("sdx-cli: cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            buf
        }
    };
    match sdx::scenario::run_scenario(&input) {
        Ok(transcript) => print!("{transcript}"),
        Err(e) => {
            eprintln!("sdx-cli: {e}");
            std::process::exit(1);
        }
    }
}
