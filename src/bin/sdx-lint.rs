//! `sdx-lint` — statically verify the policies of scenario files before
//! (or instead of) deploying them.
//!
//! Runs each scenario with the `sdx-analyze` pass enabled and reports every
//! diagnostic the analyzer produced for the final compilation: shadowed
//! clauses, cross-participant conflicts and blackholes, forwarding loops,
//! and VNH/ARP inconsistencies. With `--verify`, additionally runs the
//! whole-fabric symbolic reachability verifier (`sdx-verify`): BGP
//! consistency/isolation, cross-stage blackholes, and VNH/FIB tag integrity,
//! each violation carrying a concrete witness packet. With `--plan`,
//! recompiles go through the static update planner (`sdx-plan`): the
//! rule-level delta against the previously installed tables is analyzed,
//! naive-ordering violations are reported with the violating step and a
//! witness packet, and a safe install schedule is synthesized (the
//! `plan-ordered`/`plan-two-phase` summary).
//!
//! ```bash
//! cargo run --bin sdx-lint -- scenarios/figure1.sdx
//! cargo run --bin sdx-lint -- --deny broken.sdx    # refuse to install flow mods
//! cargo run --bin sdx-lint -- --verify scenarios/*.sdx
//! cargo run --bin sdx-lint -- --plan scenarios/plan-blackhole.sdx
//! cat scenario.sdx | cargo run --bin sdx-lint
//! ```
//!
//! Exit status: 0 when every scenario is clean (warnings allowed), 1 when
//! *any* scenario has errors (or `--deny` blocked a compile), 2 when any
//! scenario itself failed to run. The worst status across all inputs wins.

use std::io::Read;

use sdx::core::{AnalysisMode, CompileOptions, Severity};

fn main() {
    let mut deny = false;
    let mut quiet = false;
    let mut verify = false;
    let mut plan = false;
    let mut delta = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: sdx-lint [--deny] [--quiet] [--verify] [--plan] [--delta] \
                     [SCENARIO-FILE…]"
                );
                eprintln!("  --deny    compile with AnalysisMode::Deny: a defective");
                eprintln!("            scenario fails at its `compile` line and no");
                eprintln!("            flow rules are installed");
                eprintln!("  --verify  additionally run the whole-fabric symbolic");
                eprintln!("            reachability verifier (isolation, blackhole,");
                eprintln!("            VNH/FIB integrity) with witness packets");
                eprintln!("  --plan    additionally run the static update planner on");
                eprintln!("            recompiles: naive-ordering violations (step +");
                eprintln!("            witness packet) and the synthesized safe schedule");
                eprintln!("  --delta   replay announce/withdraw lines after `compile`");
                eprintln!("            through the streamed fast path with the");
                eprintln!("            incremental header-space verifier: per-delta");
                eprintln!("            certified/reordered/rejected verdicts with");
                eprintln!("            witness packets (with --deny, unsafe deltas");
                eprintln!("            are not installed)");
                eprintln!("  --quiet   suppress the scenario transcripts");
                eprintln!("  reads stdin when no file is given; with several files,");
                eprintln!("  the worst exit status across all of them is returned");
                return;
            }
            "--deny" => deny = true,
            "--quiet" | "-q" => quiet = true,
            "--verify" => verify = true,
            "--plan" => plan = true,
            "--delta" => delta = true,
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("sdx-lint: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mode = if deny {
        AnalysisMode::Deny
    } else {
        AnalysisMode::Warn
    };
    let options = CompileOptions {
        analysis: mode,
        verify: if verify { mode } else { AnalysisMode::Off },
        plan: if plan { mode } else { AnalysisMode::Off },
        delta_check: if delta { mode } else { AnalysisMode::Off },
        ..Default::default()
    };

    let inputs: Vec<(String, String)> = if paths.is_empty() {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        vec![("<stdin>".to_string(), buf)]
    } else {
        paths
            .into_iter()
            .map(|path| {
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("sdx-lint: cannot read {path}: {e}");
                    std::process::exit(2);
                });
                (path, text)
            })
            .collect()
    };

    let many = inputs.len() > 1;
    let mut worst = 0;
    for (name, input) in inputs {
        if many {
            println!("== {name} ==");
        }
        let status = if delta {
            delta_one(options, quiet, &name, &input)
        } else {
            lint_one(options, deny, quiet, &name, &input)
        };
        worst = worst.max(status);
    }
    std::process::exit(worst);
}

/// Replay one scenario's updates through the checked streamed fast path;
/// returns its exit status (0 when every delta certified or was safely
/// reordered, 1 when any was rejected, 2 on scenario failure).
fn delta_one(options: CompileOptions, quiet: bool, name: &str, input: &str) -> i32 {
    match sdx::scenario::run_scenario_delta(options, input) {
        Ok((transcript, records)) => {
            if !quiet {
                print!("{transcript}");
            }
            let certified = records
                .iter()
                .filter(|r| r.report.verdict == sdx::core::DeltaVerdict::Certified)
                .count();
            let reordered = records
                .iter()
                .filter(|r| r.report.verdict == sdx::core::DeltaVerdict::Reordered)
                .count();
            let rejected = records
                .iter()
                .filter(|r| r.report.verdict == sdx::core::DeltaVerdict::Rejected)
                .count();
            println!(
                "sdx-lint: {} delta{}: {certified} certified, {reordered} reordered, \
                 {rejected} rejected",
                records.len(),
                if records.len() == 1 { "" } else { "s" },
            );
            if rejected > 0 {
                1
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("sdx-lint: {name}: {e}");
            2
        }
    }
}

/// Lint one scenario; returns its exit status (0 clean, 1 findings/denied,
/// 2 scenario failure).
fn lint_one(options: CompileOptions, deny: bool, quiet: bool, name: &str, input: &str) -> i32 {
    match sdx::scenario::run_scenario_with(options, input) {
        Ok((transcript, analysis)) => {
            if !quiet {
                print!("{transcript}");
            }
            let Some(analysis) = analysis else {
                eprintln!("sdx-lint: {name}: scenario never compiled; nothing analyzed");
                return 2;
            };
            for diag in &analysis.diagnostics {
                println!("{diag}");
            }
            let errors = analysis.errors();
            let warnings = analysis.warnings();
            println!(
                "sdx-lint: {} error{}, {} warning{}",
                errors,
                if errors == 1 { "" } else { "s" },
                warnings,
                if warnings == 1 { "" } else { "s" },
            );
            if analysis
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
            {
                1
            } else {
                0
            }
        }
        Err(e) => {
            // In deny mode a defective scenario dies at its `compile` line
            // with the gate's findings in the message — report that as a
            // lint failure, not a scenario bug.
            let msg = e.to_string();
            if deny
                && (msg.contains("static analysis rejected")
                    || msg.contains("reachability verification rejected")
                    || msg.contains("update planning rejected"))
            {
                eprintln!("sdx-lint: {name}: {msg}");
                return 1;
            }
            eprintln!("sdx-lint: {name}: {e}");
            2
        }
    }
}
