//! `sdx-lint` — statically verify the policies of a scenario file before
//! (or instead of) deploying them.
//!
//! Runs the scenario with the `sdx-analyze` pass enabled and reports every
//! diagnostic the analyzer produced for the final compilation: shadowed
//! clauses, cross-participant conflicts and blackholes, forwarding loops,
//! and VNH/ARP inconsistencies.
//!
//! ```bash
//! cargo run --bin sdx-lint -- scenarios/figure1.sdx
//! cargo run --bin sdx-lint -- --deny broken.sdx   # refuse to install flow mods
//! cat scenario.sdx | cargo run --bin sdx-lint
//! ```
//!
//! Exit status: 0 when the analysis is clean (warnings allowed), 1 when it
//! found errors (or `--deny` blocked a compile), 2 when the scenario itself
//! failed to run.

use std::io::Read;

use sdx::core::{AnalysisMode, CompileOptions, Severity};

fn main() {
    let mut deny = false;
    let mut quiet = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("usage: sdx-lint [--deny] [--quiet] [SCENARIO-FILE]");
                eprintln!("  --deny   compile with AnalysisMode::Deny: a defective");
                eprintln!("           scenario fails at its `compile` line and no");
                eprintln!("           flow rules are installed");
                eprintln!("  --quiet  suppress the scenario transcript");
                eprintln!("  reads stdin when no file is given");
                return;
            }
            "--deny" => deny = true,
            "--quiet" | "-q" => quiet = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("sdx-lint: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let input = match path {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("sdx-lint: cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            buf
        }
    };

    let mode = if deny {
        AnalysisMode::Deny
    } else {
        AnalysisMode::Warn
    };
    let options = CompileOptions {
        analysis: mode,
        ..Default::default()
    };
    match sdx::scenario::run_scenario_with(options, &input) {
        Ok((transcript, analysis)) => {
            if !quiet {
                print!("{transcript}");
            }
            let Some(analysis) = analysis else {
                eprintln!("sdx-lint: scenario never compiled; nothing analyzed");
                std::process::exit(2);
            };
            for diag in &analysis.diagnostics {
                println!("{diag}");
            }
            let errors = analysis.errors();
            let warnings = analysis.warnings();
            println!(
                "sdx-lint: {} error{}, {} warning{}",
                errors,
                if errors == 1 { "" } else { "s" },
                warnings,
                if warnings == 1 { "" } else { "s" },
            );
            if analysis
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
            {
                std::process::exit(1);
            }
        }
        Err(e) => {
            // In deny mode a defective scenario dies at its `compile` line
            // with the analyzer's findings in the message — report that as
            // a lint failure, not a scenario bug.
            let msg = e.to_string();
            if deny && msg.contains("static analysis rejected") {
                eprintln!("sdx-lint: {msg}");
                std::process::exit(1);
            }
            eprintln!("sdx-lint: {e}");
            std::process::exit(2);
        }
    }
}
