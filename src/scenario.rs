//! A line-oriented scenario language for driving an SDX from a file or
//! stdin — the `sdx-cli` binary's engine, and a convenient fixture format
//! for tests.
//!
//! ```text
//! # comments and blank lines are ignored
//! participant A asn 65001 port 1 mac 02:00:00:00:00:01 ip 172.0.0.1
//! participant B asn 65002 port 2 mac 02:00:00:00:00:02 ip 172.0.0.2
//! remote D asn 64500
//! announce B 20.0.0.0/8 path 65002 nexthop 172.0.0.2
//! deny-export B 20.0.0.0/8 to A
//! policy A outbound match dstport=80 fwd B
//! policy B inbound match srcip=0.0.0.0/1 port 2
//! compile
//! send A src 10.0.0.1 dst 20.0.0.1 dstport 80
//! table
//! groups
//! ```
//!
//! Every command appends its output to the transcript returned by
//! [`run_scenario`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

use sdx_bgp::{AsPath, Asn, ExportPolicy, PathAttributes};
use sdx_core::{
    Clause, Dest, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx_ip::{MacAddr, Prefix};
use sdx_policy::{Field, Packet, Predicate};

/// A scenario interpretation error, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// The interpreter state.
struct Interp {
    runtime: Option<SdxRuntime>,
    sim: Option<FabricSim>,
    names: BTreeMap<String, ParticipantId>,
    next_id: u32,
    pending_policies: BTreeMap<ParticipantId, ParticipantPolicy>,
    out: String,
    /// Route `announce`/`withdraw` lines after the first `compile` through
    /// the streamed delta path ([`SdxRuntime::apply_update_delta`]) instead
    /// of the batch RIB mutation, emitting the incremental verifier's
    /// per-delta verdict into the transcript.
    delta: bool,
    /// Delta-log records already rendered into the transcript.
    delta_logged: usize,
}

/// Run a scenario, returning its transcript.
pub fn run_scenario(input: &str) -> Result<String, ScenarioError> {
    run_scenario_with(sdx_core::CompileOptions::default(), input).map(|(out, _)| out)
}

/// Run a scenario under explicit [`CompileOptions`](sdx_core::CompileOptions),
/// returning the transcript together with the static analysis of the last
/// compilation (if `options.analysis` was enabled and a `compile` ran).
///
/// This is the engine behind `sdx-lint`: drive the scenario with
/// [`AnalysisMode::Warn`](sdx_core::AnalysisMode) to collect diagnostics, or
/// `Deny` to make a defective `compile` line fail outright.
pub fn run_scenario_with(
    options: sdx_core::CompileOptions,
    input: &str,
) -> Result<(String, Option<sdx_core::Analysis>), ScenarioError> {
    let (interp, _) = run_interp(options, input, false)?;
    Ok(interp)
}

/// Run a scenario in *delta replay* mode: every `announce`/`withdraw` after
/// the first `compile` is streamed through the incremental fast path
/// ([`SdxRuntime::apply_update_delta`]) with the per-delta header-space
/// verifier active (per `options.delta_check`), and the verifier's verdict
/// for each delta lands in the transcript. Returns the transcript together
/// with the full [`sdx_core::DeltaRecord`] log.
///
/// This is the engine behind `sdx-lint --delta`.
pub fn run_scenario_delta(
    options: sdx_core::CompileOptions,
    input: &str,
) -> Result<(String, Vec<sdx_core::DeltaRecord>), ScenarioError> {
    let ((out, _), records) = run_interp(options, input, true)?;
    Ok((out, records))
}

/// `run_interp`'s result: the transcript (with the last analysis, when one
/// ran) plus the streamed-delta verdict records.
type InterpOutput = (
    (String, Option<sdx_core::Analysis>),
    Vec<sdx_core::DeltaRecord>,
);

fn run_interp(
    options: sdx_core::CompileOptions,
    input: &str,
    delta: bool,
) -> Result<InterpOutput, ScenarioError> {
    let mut runtime = SdxRuntime::new(options);
    if delta {
        runtime.set_delta_log_limit(4_096);
        runtime.set_delta_judge_naive(true);
    }
    let mut interp = Interp {
        runtime: Some(runtime),
        sim: None,
        names: BTreeMap::new(),
        next_id: 1,
        pending_policies: BTreeMap::new(),
        out: String::new(),
        delta,
        delta_logged: 0,
    };
    for (i, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        interp.command(line).map_err(|message| ScenarioError {
            line: i + 1,
            message,
        })?;
    }
    let analysis = interp
        .runtime()
        .ok()
        .and_then(|r| r.compilation())
        .and_then(|c| c.analysis.clone());
    let records = interp
        .runtime()
        .ok()
        .map(|r| r.delta_log().to_vec())
        .unwrap_or_default();
    Ok(((interp.out, analysis), records))
}

impl Interp {
    fn command(&mut self, line: &str) -> Result<(), String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "participant" => self.cmd_participant(&tokens),
            "remote" => self.cmd_remote(&tokens),
            "announce" => self.cmd_announce(&tokens),
            "withdraw" => self.cmd_withdraw(&tokens),
            "deny-export" => self.cmd_deny_export(&tokens),
            "policy" => self.cmd_policy(&tokens),
            "compile" => self.cmd_compile(),
            "send" => self.cmd_send(&tokens),
            "table" => self.cmd_table(),
            "groups" => self.cmd_groups(),
            "advertisements" => self.cmd_advertisements(&tokens),
            "echo" => {
                let _ = writeln!(self.out, "{}", line.trim_start_matches("echo").trim());
                Ok(())
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }

    fn runtime_mut(&mut self) -> Result<&mut SdxRuntime, String> {
        match (&mut self.runtime, &mut self.sim) {
            (Some(r), _) => Ok(r),
            (None, Some(sim)) => Ok(sim.runtime_mut()),
            _ => Err("no runtime".into()),
        }
    }

    fn runtime(&self) -> Result<&SdxRuntime, String> {
        match (&self.runtime, &self.sim) {
            (Some(r), _) => Ok(r),
            (None, Some(sim)) => Ok(sim.runtime()),
            _ => Err("no runtime".into()),
        }
    }

    fn lookup(&self, name: &str) -> Result<ParticipantId, String> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| format!("unknown participant {name:?}"))
    }

    fn cmd_participant(&mut self, t: &[&str]) -> Result<(), String> {
        // participant NAME asn N port P mac M ip I [port P2 mac M2 ip I2]…
        let name = *t.get(1).ok_or("participant needs a name")?;
        let mut asn: Option<u32> = None;
        let mut ports: Vec<PortConfig> = Vec::new();
        let mut i = 2;
        let mut current: Option<(Option<u32>, Option<MacAddr>, Option<Ipv4Addr>)> = None;
        while i + 1 < t.len() + 1 {
            if i >= t.len() {
                break;
            }
            let key = t[i];
            let value = *t.get(i + 1).ok_or_else(|| format!("{key} needs a value"))?;
            match key {
                "asn" => asn = Some(value.parse().map_err(|_| "bad asn")?),
                "port" => {
                    if let Some(c) = current.take() {
                        ports.push(finish_port(c)?);
                    }
                    current = Some((Some(value.parse().map_err(|_| "bad port")?), None, None));
                }
                "mac" => {
                    let c = current.as_mut().ok_or("mac before port")?;
                    c.1 = Some(value.parse().map_err(|e| format!("bad mac: {e}"))?);
                }
                "ip" => {
                    let c = current.as_mut().ok_or("ip before port")?;
                    c.2 = Some(value.parse().map_err(|_| "bad ip")?);
                }
                other => return Err(format!("unknown participant key {other:?}")),
            }
            i += 2;
        }
        if let Some(c) = current.take() {
            ports.push(finish_port(c)?);
        }
        let asn = asn.ok_or("participant needs asn")?;
        let id = ParticipantId(self.next_id);
        self.next_id += 1;
        self.names.insert(name.to_string(), id);
        self.runtime_mut()?
            .add_participant(Participant::new(id, Asn(asn), ports));
        Ok(())
    }

    fn cmd_remote(&mut self, t: &[&str]) -> Result<(), String> {
        // remote NAME asn N
        let name = *t.get(1).ok_or("remote needs a name")?;
        if t.get(2) != Some(&"asn") {
            return Err("remote NAME asn N".into());
        }
        let asn: u32 = t
            .get(3)
            .ok_or("missing asn")?
            .parse()
            .map_err(|_| "bad asn")?;
        let id = ParticipantId(self.next_id);
        self.next_id += 1;
        self.names.insert(name.to_string(), id);
        self.runtime_mut()?
            .add_participant(Participant::remote(id, Asn(asn)));
        Ok(())
    }

    fn cmd_announce(&mut self, t: &[&str]) -> Result<(), String> {
        // announce NAME PREFIX[,PREFIX…] path A[,B…] nexthop IP
        let id = self.lookup(t.get(1).ok_or("announce needs a participant")?)?;
        let prefixes = parse_prefix_list(t.get(2).ok_or("announce needs prefixes")?)?;
        let mut path: Vec<u32> = Vec::new();
        let mut nexthop: Option<Ipv4Addr> = None;
        let mut i = 3;
        while i < t.len() {
            match t[i] {
                "path" => {
                    path = t
                        .get(i + 1)
                        .ok_or("path needs a value")?
                        .split(',')
                        .map(|s| s.parse().map_err(|_| "bad asn in path".to_string()))
                        .collect::<Result<_, _>>()?;
                }
                "nexthop" => {
                    nexthop = Some(
                        t.get(i + 1)
                            .ok_or("nexthop needs a value")?
                            .parse()
                            .map_err(|_| "bad ip")?,
                    )
                }
                other => return Err(format!("unknown announce key {other:?}")),
            }
            i += 2;
        }
        let nexthop = nexthop.ok_or("announce needs nexthop")?;
        let attrs = PathAttributes::new(AsPath::sequence(path), nexthop);
        if self.streaming() {
            return self.apply_delta(id, sdx_bgp::Update::announce(prefixes, attrs));
        }
        self.runtime_mut()?.announce(id, prefixes, attrs);
        self.resync();
        Ok(())
    }

    fn cmd_withdraw(&mut self, t: &[&str]) -> Result<(), String> {
        // withdraw NAME PREFIX[,PREFIX…]
        let id = self.lookup(t.get(1).ok_or("withdraw needs a participant")?)?;
        let prefixes = parse_prefix_list(t.get(2).ok_or("withdraw needs prefixes")?)?;
        if self.streaming() {
            return self.apply_delta(id, sdx_bgp::Update::withdraw(prefixes));
        }
        self.runtime_mut()?.withdraw(id, prefixes);
        self.resync();
        Ok(())
    }

    /// Is the interpreter past the first `compile` in delta-replay mode?
    fn streaming(&self) -> bool {
        self.delta
            && self
                .runtime()
                .ok()
                .is_some_and(|r| r.compilation().is_some())
    }

    /// Stream one BGP update through the incremental fast path and render
    /// the verifier's verdict(s) for it into the transcript.
    fn apply_delta(&mut self, from: ParticipantId, update: sdx_bgp::Update) -> Result<(), String> {
        let logged = self.delta_logged;
        let (lines, installed, removed, needs_reoptimize) = {
            let runtime = self.runtime_mut()?;
            let (_, install) = runtime.apply_update_delta(from, &update);
            let lines: Vec<String> = runtime.delta_log()[logged..]
                .iter()
                .map(render_delta_record)
                .collect();
            (
                lines,
                install.installed,
                install.removed,
                runtime.needs_reoptimize(),
            )
        };
        self.delta_logged = logged + lines.len();
        for l in lines {
            let _ = writeln!(self.out, "{l}");
        }
        let _ = writeln!(
            self.out,
            "delta: +{installed} -{removed} rules{}",
            if needs_reoptimize {
                " (reoptimize needed)"
            } else {
                ""
            }
        );
        self.resync();
        Ok(())
    }

    fn cmd_deny_export(&mut self, t: &[&str]) -> Result<(), String> {
        // deny-export NAME PREFIX to NAME
        let announcer = self.lookup(t.get(1).ok_or("deny-export needs a participant")?)?;
        let prefix: Prefix = t
            .get(2)
            .ok_or("deny-export needs a prefix")?
            .parse()
            .map_err(|e| format!("{e}"))?;
        if t.get(3) != Some(&"to") {
            return Err("deny-export NAME PREFIX to NAME".into());
        }
        let viewer = self.lookup(t.get(4).ok_or("deny-export needs a viewer")?)?;
        self.runtime_mut()?.set_export_policy(
            announcer,
            ExportPolicy::export_all().deny_prefix_to(prefix, viewer.peer()),
        );
        Ok(())
    }

    fn cmd_policy(&mut self, t: &[&str]) -> Result<(), String> {
        // policy NAME outbound match K=V[,K=V…] fwd NAME [unfiltered]
        // policy NAME inbound  match K=V[,K=V…] (port N | fwd NAME | drop)
        //        [rewrite K=V[,…]]
        let id = self.lookup(t.get(1).ok_or("policy needs a participant")?)?;
        let direction = *t.get(2).ok_or("policy needs a direction")?;
        let mut match_ = Predicate::True;
        let mut dest: Option<Dest> = None;
        let mut rewrites: Vec<(Field, u64)> = Vec::new();
        let mut unfiltered = false;
        let mut i = 3;
        while i < t.len() {
            match t[i] {
                "match" => {
                    match_ = parse_match(t.get(i + 1).ok_or("match needs conditions")?)?;
                    i += 2;
                }
                "fwd" => {
                    dest = Some(Dest::Participant(
                        self.lookup(t.get(i + 1).ok_or("fwd needs a participant")?)?,
                    ));
                    i += 2;
                }
                "port" => {
                    dest = Some(Dest::OwnPort(
                        t.get(i + 1)
                            .ok_or("port needs a number")?
                            .parse()
                            .map_err(|_| "bad port")?,
                    ));
                    i += 2;
                }
                "drop" => {
                    dest = Some(Dest::Drop);
                    i += 1;
                }
                "bgp" => {
                    dest = Some(Dest::BgpDefault);
                    i += 1;
                }
                "rewrite" => {
                    for (f, v) in
                        parse_assignments(t.get(i + 1).ok_or("rewrite needs assignments")?)?
                    {
                        rewrites.push((f, v));
                    }
                    i += 2;
                }
                "unfiltered" => {
                    unfiltered = true;
                    i += 1;
                }
                other => return Err(format!("unknown policy key {other:?}")),
            }
        }
        let dest = dest.ok_or("policy needs a destination (fwd/port/drop/bgp)")?;
        let clause = Clause {
            match_,
            dst_prefixes: None,
            rewrites,
            dest,
            unfiltered,
        };
        let policy = self.pending_policies.entry(id).or_default();
        match direction {
            "outbound" => policy.outbound.push(clause),
            "inbound" => policy.inbound.push(clause),
            other => return Err(format!("direction must be inbound/outbound, got {other:?}")),
        }
        Ok(())
    }

    fn cmd_compile(&mut self) -> Result<(), String> {
        let pending = std::mem::take(&mut self.pending_policies);
        let runtime = self.runtime_mut()?;
        for (id, policy) in pending {
            runtime.set_policy(id, policy);
        }
        let stats = runtime.compile().map_err(|e| e.to_string())?;
        let _ = writeln!(
            self.out,
            "compiled: {} rules, {} groups, {} µs",
            stats.rules, stats.groups, stats.duration_us
        );
        // (Re)build the simulation around the configured runtime.
        if self.sim.is_none() {
            let runtime = self.runtime.take().ok_or("runtime moved")?;
            self.sim = Some(FabricSim::new(runtime));
        }
        self.resync();
        Ok(())
    }

    fn resync(&mut self) {
        if let Some(sim) = &mut self.sim {
            sim.sync();
        }
    }

    fn cmd_send(&mut self, t: &[&str]) -> Result<(), String> {
        // send NAME src IP dst IP [srcport N] [dstport N] [proto N]
        let from = self.lookup(t.get(1).ok_or("send needs a sender")?)?;
        let mut pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 6u8);
        let mut i = 2;
        while i + 1 < t.len() + 1 && i < t.len() {
            let key = t[i];
            let value = *t.get(i + 1).ok_or_else(|| format!("{key} needs a value"))?;
            match key {
                "src" => pkt.set(
                    Field::SrcIp,
                    value.parse::<Ipv4Addr>().map_err(|_| "bad ip")?,
                ),
                "dst" => pkt.set(
                    Field::DstIp,
                    value.parse::<Ipv4Addr>().map_err(|_| "bad ip")?,
                ),
                "srcport" => pkt.set(
                    Field::SrcPort,
                    value.parse::<u16>().map_err(|_| "bad port")?,
                ),
                "dstport" => pkt.set(
                    Field::DstPort,
                    value.parse::<u16>().map_err(|_| "bad port")?,
                ),
                "proto" => pkt.set(
                    Field::IpProto,
                    value.parse::<u8>().map_err(|_| "bad proto")?,
                ),
                other => return Err(format!("unknown send key {other:?}")),
            }
            i += 2;
        }
        let sim = self
            .sim
            .as_mut()
            .ok_or("send requires a compiled fabric (run `compile`)")?;
        let out = sim.send_from(from, pkt);
        if out.is_empty() {
            let _ = writeln!(self.out, "send: dropped");
        } else {
            for d in out {
                let name = self
                    .names
                    .iter()
                    .find(|(_, id)| **id == d.to)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_else(|| d.to.to_string());
                let _ = writeln!(self.out, "send: delivered to {name} port {}", d.port);
            }
        }
        Ok(())
    }

    fn cmd_table(&mut self) -> Result<(), String> {
        let table = format!("{}", self.runtime()?.switch().table());
        let _ = writeln!(self.out, "{table}");
        Ok(())
    }

    fn cmd_groups(&mut self) -> Result<(), String> {
        let lines: Vec<String> = {
            let runtime = self.runtime()?;
            let Some(c) = runtime.compilation() else {
                return Err("no compilation (run `compile`)".into());
            };
            c.groups
                .iter()
                .enumerate()
                .map(|(i, group)| {
                    let (vnh, vmac) = c.vnh[i];
                    format!(
                        "group {i}: vnh {vnh} vmac {vmac} prefixes {}",
                        group.prefixes
                    )
                })
                .collect()
        };
        for l in lines {
            let _ = writeln!(self.out, "{l}");
        }
        Ok(())
    }

    fn cmd_advertisements(&mut self, t: &[&str]) -> Result<(), String> {
        // advertisements NAME
        let viewer = self.lookup(t.get(1).ok_or("advertisements needs a participant")?)?;
        let runtime = self.runtime()?;
        let mut lines = Vec::new();
        for prefix in runtime.route_server().all_prefixes() {
            if let Some(nh) = runtime.advertised_next_hop(&prefix, viewer) {
                lines.push(format!("advertise {prefix} nexthop {nh}"));
            }
        }
        for l in lines {
            let _ = writeln!(self.out, "{l}");
        }
        Ok(())
    }
}

/// One transcript block for a checked streamed delta: the verdict line plus
/// (capped) witness lines for the proposed and naive orderings.
fn render_delta_record(r: &sdx_core::DeltaRecord) -> String {
    const SHOWN: usize = 4;
    let rep = &r.report;
    let mut s = format!(
        "delta {}: {}{} ({} dirty injections, {} states, {} µs)",
        r.prefix,
        rep.verdict.label(),
        if rep.structural { " [structural]" } else { "" },
        rep.dirty_injections,
        rep.states_checked,
        rep.check_us,
    );
    let mut witnesses = |label: &str, violations: &[sdx_core::Violation]| {
        for v in violations.iter().take(SHOWN) {
            let _ = write!(
                s,
                "\n  {label} {} after [{}]: {}",
                v.kind.code_suffix(),
                v.step_desc,
                v.message
            );
        }
        if violations.len() > SHOWN {
            let _ = write!(s, "\n  {label} … {} more", violations.len() - SHOWN);
        }
    };
    witnesses("proposed-order", &rep.violations);
    witnesses("naive-order", &rep.naive_violations);
    if let Some(agreed) = r.agreed {
        let _ = write!(
            s,
            "\n  from-scratch oracle {} in {} µs",
            if agreed { "agrees" } else { "DISAGREES" },
            r.from_scratch_us
        );
    }
    s
}

fn finish_port(
    (port, mac, ip): (Option<u32>, Option<MacAddr>, Option<Ipv4Addr>),
) -> Result<PortConfig, String> {
    Ok(PortConfig {
        port: port.ok_or("port missing")?,
        mac: mac.ok_or("port needs mac")?,
        ip: ip.ok_or("port needs ip")?,
    })
}

fn parse_prefix_list(s: &str) -> Result<Vec<Prefix>, String> {
    s.split(',')
        .map(|p| p.parse().map_err(|e| format!("{e}")))
        .collect()
}

/// Parse `k=v[,k=v…]` into a conjunctive predicate. IP fields accept CIDR.
fn parse_match(s: &str) -> Result<Predicate, String> {
    let mut pred = Predicate::True;
    for part in s.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad condition {part:?}"))?;
        let field = parse_field(key)?;
        let term = if field.is_ip() && value.contains('/') {
            Predicate::test_prefix(field, value.parse().map_err(|e| format!("{e}"))?)
        } else {
            Predicate::test(field, parse_value(field, value)?)
        };
        pred = pred.and(term);
    }
    Ok(pred)
}

fn parse_assignments(s: &str) -> Result<Vec<(Field, u64)>, String> {
    s.split(',')
        .map(|part| {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad assignment {part:?}"))?;
            let field = parse_field(key)?;
            Ok((field, parse_value(field, value)?))
        })
        .collect()
}

fn parse_field(s: &str) -> Result<Field, String> {
    Field::ALL
        .iter()
        .find(|f| f.name() == s)
        .copied()
        .ok_or_else(|| format!("unknown field {s:?}"))
}

fn parse_value(field: Field, s: &str) -> Result<u64, String> {
    if field.is_ip() {
        Ok(u32::from(s.parse::<Ipv4Addr>().map_err(|_| format!("bad ip {s:?}"))?) as u64)
    } else if field.is_mac() {
        Ok(s.parse::<MacAddr>().map_err(|e| format!("{e}"))?.to_u64())
    } else {
        s.parse().map_err(|_| format!("bad value {s:?}"))
    }
}
