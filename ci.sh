#!/usr/bin/env bash
# Repo CI: build, test, lint, format — all offline (the workspace vendors
# its external dependencies under vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --offline --workspace

echo "== cargo test"
cargo test -q --offline --workspace

echo "== cargo clippy"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "== parallel compile smoke (fig8 quick, threads 1 vs 4)"
# The parallel pipeline must be bit-identical to sequential: run the
# shrunken fig8 sweep at both thread counts and diff the fabric
# fingerprints it prints per scale.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
SDX_BENCH_QUICK=1 SDX_THREADS=1 SDX_BENCH_JSON="$smoke_dir/b1.json" \
    target/release/fig8 | grep '^# fingerprint' > "$smoke_dir/fp1"
SDX_BENCH_QUICK=1 SDX_THREADS=4 SDX_BENCH_JSON="$smoke_dir/b4.json" \
    target/release/fig8 | grep '^# fingerprint' > "$smoke_dir/fp4"
if ! diff "$smoke_dir/fp1" "$smoke_dir/fp4"; then
    echo "ci: parallel compile output diverged from sequential" >&2; exit 1
fi
grep -q '"threads":4' "$smoke_dir/b4.json" || {
    echo "ci: bench json missing thread count" >&2; exit 1
}

echo "== reachability verify smoke (fig8 quick, SDX_VERIFY=1, threads 1 vs 4)"
# Run the whole-fabric verifier (isolation, blackhole, VNH integrity passes
# on every compile, plus the differential recompile check after BGP churn)
# over the quick sweep at both thread counts; the pass wall clocks must land
# in the bench JSON and the fabric must verify clean.
SDX_BENCH_QUICK=1 SDX_VERIFY=1 SDX_THREADS=1 SDX_BENCH_JSON="$smoke_dir/v1.json" \
    target/release/fig8 | grep '^# fingerprint' > "$smoke_dir/vfp1"
SDX_BENCH_QUICK=1 SDX_VERIFY=1 SDX_THREADS=4 SDX_BENCH_JSON="$smoke_dir/v4.json" \
    target/release/fig8 | grep '^# fingerprint' > "$smoke_dir/vfp4"
if ! diff "$smoke_dir/vfp1" "$smoke_dir/vfp4"; then
    echo "ci: verify-mode compile output diverged across thread counts" >&2; exit 1
fi
for f in "$smoke_dir/v1.json" "$smoke_dir/v4.json"; do
    for key in verify_transit verify_isolation verify_blackhole verify_vnh verify_diff; do
        grep -q "\"$key\":" "$f" || {
            echo "ci: bench json missing $key timing" >&2; exit 1
        }
    done
    grep -q '"verify":{"warnings":0,"errors":0}' "$f" || {
        echo "ci: synthetic fabric failed reachability verification" >&2; exit 1
    }
done

echo "== data-plane smoke (dataplane quick + fig1 indexed-vs-linear diff)"
# The tuple-space index must forward bit-identically to the linear scan:
# --diff-fig1 probes the Figure 1 exchange (base table, fast-path overlay
# churn, overlay retirement) through both paths and exits non-zero on any
# difference. The quick bench run checks the JSON artifact shape.
target/release/dataplane --diff-fig1
SDX_BENCH_QUICK=1 SDX_BENCH_JSON="$smoke_dir/dp.json" \
    target/release/dataplane > /dev/null
for key in shards aggregate_pps wall_pps scaling_efficiency linear_pps \
           linear_packets buckets index_build_us speedup_vs_linear; do
    grep -q "\"$key\":" "$smoke_dir/dp.json" || {
        echo "ci: dataplane json missing $key" >&2; exit 1
    }
done

echo "== data-plane shard smoke (dataplane quick, SDX_DP_THREADS 1 vs 4)"
# The RSS-sharded data plane must forward bit-identically regardless of the
# shard count: run the quick sweep pinned to 1 and to 4 shards and diff the
# per-batch forwarding fingerprints.
SDX_BENCH_QUICK=1 SDX_DP_THREADS=1 SDX_BENCH_JSON="$smoke_dir/dp1.json" \
    target/release/dataplane | grep '^# fingerprint' \
    | sed 's/shards=[0-9]*/shards=N/' > "$smoke_dir/dpfp1"
SDX_BENCH_QUICK=1 SDX_DP_THREADS=4 SDX_BENCH_JSON="$smoke_dir/dp4.json" \
    target/release/dataplane | grep '^# fingerprint' \
    | sed 's/shards=[0-9]*/shards=N/' > "$smoke_dir/dpfp4"
if ! diff "$smoke_dir/dpfp1" "$smoke_dir/dpfp4"; then
    echo "ci: sharded forwarding diverged from single-shard" >&2; exit 1
fi
grep -q '"shards":4' "$smoke_dir/dp4.json" || {
    echo "ci: dataplane json missing pinned shard count" >&2; exit 1
}

echo "== sdx-lint scenarios"
target/release/sdx-lint --quiet --verify scenarios/figure1.sdx
for s in scenarios/lint-*.sdx; do
    # Seeded-defect fixtures must be flagged (exit 1) — not crash (exit 2+).
    # --verify runs the reachability passes too: lint-isolation.sdx is clean
    # to the static analyzer and only the symbolic verifier catches it.
    if target/release/sdx-lint --quiet --verify "$s" > /dev/null; then
        echo "ci: $s unexpectedly clean" >&2; exit 1
    elif [ $? -ne 1 ]; then
        echo "ci: $s failed to run" >&2; exit 1
    fi
done
# Multi-file invocation: worst exit status across inputs wins.
if target/release/sdx-lint --quiet --verify scenarios/figure1.sdx scenarios/lint-isolation.sdx > /dev/null; then
    echo "ci: multi-file lint must propagate the worst exit" >&2; exit 1
fi

echo "== update-plan smoke (sdx-lint --plan over scenarios/plan-*.sdx)"
# Adversarial churn fixtures: the naive rule-delta ordering demonstrably
# traverses a transient blackhole / isolation leak, so --plan must flag
# them (exit 1) with a plan-naive-* witness AND synthesize a safe
# schedule (plan-ordered / plan-two-phase) for the same delta.
for s in scenarios/plan-*.sdx; do
    if out=$(target/release/sdx-lint --quiet --plan "$s"); then
        echo "ci: $s naive ordering unexpectedly safe" >&2; exit 1
    elif [ $? -ne 1 ]; then
        echo "ci: $s plan lint failed to run" >&2; exit 1
    fi
    echo "$out" | grep -q 'plan-naive-' || {
        echo "ci: $s missing naive-ordering evidence" >&2; exit 1
    }
    echo "$out" | grep -q 'witness:' || {
        echo "ci: $s plan violation lacks a witness packet" >&2; exit 1
    }
    echo "$out" | grep -Eq 'plan-(ordered|two-phase)' || {
        echo "ci: $s no safe schedule synthesized" >&2; exit 1
    }
done
echo "$(grep -c . <<< "$(ls scenarios/plan-*.sdx)") plan fixture(s) flagged with witnesses"

echo "== streaming churn smoke (churn quick: delta pipeline vs batch recompile)"
# The churn engine drains a 1 h virtual AMS-IX trace through rule-level
# delta installs; the binary itself exits non-zero if the streamed runtime's
# forwarding fingerprint differs from a one-shot batch recompile of the
# final RIB, or if no update was processed.
SDX_BENCH_QUICK=1 SDX_BENCH_JSON="$smoke_dir/churn.json" \
    target/release/churn > /dev/null
for key in events updates_per_sec convergence_p50_us convergence_p99_us \
           delta_installed delta_removed delta_rules_max reoptimizes \
           streamed_fingerprint batch_fingerprint; do
    grep -q "\"$key\":" "$smoke_dir/churn.json" || {
        echo "ci: churn json missing $key" >&2; exit 1
    }
done
grep -q '"streamed_eq_batch":true' "$smoke_dir/churn.json" || {
    echo "ci: streamed churn diverged from batch recompile" >&2; exit 1
}
grep -q '"updates_per_sec":0\.0,' "$smoke_dir/churn.json" && {
    echo "ci: churn engine processed no updates" >&2; exit 1
}

echo "== delta-safety smoke (churn quick checked run + sdx-lint --delta)"
# The quick churn bench re-runs the trace with every streamed delta gated
# by the incremental verifier in Deny mode: every event must be checked,
# none denied, the checked runtime must still match the batch recompile
# bit for bit, and the sampled from-scratch oracle must agree on every
# verdict.
for key in delta_checked delta_certified delta_structural delta_denied \
           check_p50_us check_p99_us checked_eq_batch checked_over_baseline \
           speedup_p50 agreed disagreed; do
    grep -q "\"$key\":" "$smoke_dir/churn.json" || {
        echo "ci: churn json missing $key" >&2; exit 1
    }
done
grep -q '"delta_checked":0,' "$smoke_dir/churn.json" && {
    echo "ci: checked churn run verified no deltas" >&2; exit 1
}
grep -q '"delta_denied":[1-9]' "$smoke_dir/churn.json" && {
    echo "ci: checked churn run denied a streamed install" >&2; exit 1
}
grep -q '"checked_eq_batch":true' "$smoke_dir/churn.json" || {
    echo "ci: checked streamed run diverged from batch recompile" >&2; exit 1
}
grep -q '"disagreed":0' "$smoke_dir/churn.json" || {
    echo "ci: incremental verdicts disagreed with the from-scratch oracle" >&2; exit 1
}
# Per-delta check latency budget: 20x the committed full-run p99. The
# quick fabric is far smaller than the committed run's, so the headroom
# only has to absorb CI machine noise.
committed_p99=$(grep -o '"check_p99_us":[0-9]*' BENCH_churn.json | head -1 | cut -d: -f2)
quick_p99=$(grep -o '"check_p99_us":[0-9]*' "$smoke_dir/churn.json" | head -1 | cut -d: -f2)
budget=$((committed_p99 * 20))
if [ "$quick_p99" -gt "$budget" ]; then
    echo "ci: per-delta check p99 ${quick_p99}us blew the ${budget}us budget" >&2; exit 1
fi
echo "per-delta check p99 ${quick_p99}us (budget ${budget}us)"
# Replay the adversarial fixture: the MBB deltas certify (exit 0) while
# the naive ordering demonstrably blackholes (evidence, not a gate).
out=$(target/release/sdx-lint --delta scenarios/delta-inconsistent.sdx) || {
    echo "ci: sdx-lint --delta failed on the churn fixture" >&2; exit 1
}
echo "$out" | grep -q 'naive-order blackhole' || {
    echo "ci: delta fixture lost its naive-order blackhole evidence" >&2; exit 1
}
echo "$out" | grep -q '2 certified' || {
    echo "ci: delta fixture deltas no longer certify" >&2; exit 1
}

echo "== property harnesses (bounded fuzz sweep)"
# The seeded fuzz harness, case-bounded for CI: parser round-trip and
# token-soup robustness, and the tuple-space index vs its linear oracle.
PROPTEST_CASES=64 cargo test -q --offline -p sdx-policy --test parser_prop
PROPTEST_CASES=64 cargo test -q --offline -p sdx-switch --test index_prop

echo "ci: all green"
