#!/usr/bin/env bash
# Repo CI: build, test, lint, format — all offline (the workspace vendors
# its external dependencies under vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release --offline --workspace

echo "== cargo test"
cargo test -q --offline --workspace

echo "== cargo clippy"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "== sdx-lint scenarios"
target/release/sdx-lint --quiet scenarios/figure1.sdx
for s in scenarios/lint-*.sdx; do
    # Seeded-defect fixtures must be flagged (exit 1) — not crash (exit 2+).
    if target/release/sdx-lint --quiet "$s" > /dev/null; then
        echo "ci: $s unexpectedly clean" >&2; exit 1
    elif [ $? -ne 1 ]; then
        echo "ci: $s failed to run" >&2; exit 1
    fi
done

echo "ci: all green"
