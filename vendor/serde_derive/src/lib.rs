//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata;
//! nothing serializes at runtime, so the derives expand to nothing. The
//! `serde` helper attribute is declared so `#[serde(...)]` field attributes
//! (if any appear later) don't break compilation.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
