//! Minimal, behavior-compatible subset of the `bytes` crate for offline
//! builds: [`Bytes`], [`BytesMut`], [`Buf`], and [`BufMut`] with the
//! big-endian accessors the SDX wire codecs use.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Byte length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the buffer (shares storage).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// Growable byte buffer with a read cursor at the front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unread byte length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Is the buffer drained?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Drop all content.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.data.drain(..self.start);
        }
        Bytes::from(self.data)
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.data[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", self.as_slice())
    }
}

/// Read access to a contiguous byte cursor (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Any bytes left?
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
        // Compact once the dead prefix dominates, keeping amortized O(1).
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Write access to a growable byte sink (big-endian writers).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_accessors() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        b.put_slice(&[0xff]);
        assert_eq!(b.len(), 16);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.get_u32(), 0x0405_0607);
        assert_eq!(r.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn bytesmut_cursor_survives_extend() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        b.advance(6);
        assert_eq!(&b[..], b"world");
        b.extend_from_slice(b"!");
        assert_eq!(&b[..], b"world!");
    }

    #[test]
    fn bytes_slice_and_eq() {
        let b = Bytes::copy_from_slice(b"abcdef");
        assert_eq!(&b.slice(2..4)[..], b"cd");
        assert_eq!(b, Bytes::copy_from_slice(b"abcdef"));
    }
}
