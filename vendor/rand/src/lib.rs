//! Minimal, API-compatible subset of `rand` 0.8 for offline builds:
//! [`rngs::StdRng`], [`SeedableRng`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`seq::SliceRandom`], and [`random`]/[`thread_rng`].
//!
//! The generator is splitmix64 — statistically fine for workload synthesis
//! and property tests, deterministic under `seed_from_u64`.

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};

/// Core generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construction from OS entropy (stubbed: derived from the clock).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e37_79b9);
        Self::seed_from_u64(nanos)
    }
}

/// Values samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Integer types uniform ranges can sample; the single generic impl below
/// lets unsuffixed literals (`0..4`) unify with the expected output type.
pub trait UniformInt: Copy {
    /// Map to the u64 lattice (sign-extending for signed types).
    fn to_u64(self) -> u64;
    /// Map back from the u64 lattice.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {
        $(impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        })*
    };
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        let span = hi.wrapping_sub(lo);
        assert!(span > 0, "empty range");
        T::from_u64(lo.wrapping_add(rng.next_u64() % span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full-domain range.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo.wrapping_add(rng.next_u64() % span))
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }
    }

    /// Thread-local generator handle.
    #[derive(Debug, Clone)]
    pub struct ThreadRng;

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            super::with_thread_state(|rng| rng.next_u64())
        }
    }
}

thread_local! {
    static THREAD_STATE: Cell<u64> = const { Cell::new(0) };
}

fn with_thread_state<T>(f: impl FnOnce(&mut rngs::StdRng) -> T) -> T {
    THREAD_STATE.with(|cell| {
        let mut seed = cell.get();
        if seed == 0 {
            seed = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64 | 1)
                .unwrap_or(0x2545_f491_4f6c_dd1d);
        }
        let mut rng = rngs::StdRng::seed_from_u64(seed);
        let out = f(&mut rng);
        cell.set(rng.next_u64() | 1);
        out
    })
}

/// The thread-local generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

/// One value from the thread-local generator.
pub fn random<T: Standard>() -> T {
    with_thread_state(|rng| T::sample(rng))
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Shuffle and choose on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// `amount` exceeds the length).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            let amount = amount.min(self.len());
            // Partial Fisher–Yates: the first `amount` slots end up random.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

pub use rngs::StdRng as _StdRngReexportGuard; // keep path rand::rngs::StdRng canonical

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(0..=32);
            assert!(w <= 32);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
