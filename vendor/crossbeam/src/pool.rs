//! A scoped fork-join worker pool with work stealing, in the spirit of
//! `crossbeam::thread::scope` + `rayon::join` (crates.io is unavailable, so
//! the subset the SDX compiler needs lives here).
//!
//! Design:
//!
//! * [`scope`] spins up a fixed-size pool of worker threads for the duration
//!   of one fork-join region. Tasks are submitted with [`Scope::spawn`] and
//!   may borrow from the enclosing stack frame (the region joins every task
//!   before returning, like `std::thread::scope`).
//! * Each worker owns a deque: it pops its own newest task first (LIFO, for
//!   cache locality) and steals the *oldest* task from a sibling when its own
//!   deque runs dry (FIFO stealing balances coarse tasks first).
//! * The submitting thread participates in the join phase: after the region
//!   closure returns, the caller also drains queues instead of blocking.
//! * A panicking task poisons the region: the first payload is captured and
//!   re-thrown from [`scope`] after every worker has quiesced, so no task is
//!   leaked mid-flight.
//!
//! Determinism note: the pool makes **no ordering guarantees between
//! tasks** — callers that need deterministic output (the SDX compiler does)
//! must key results by task index, as [`parallel_map`] does.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Shared state of one fork-join region.
struct Shared<'env> {
    /// One deque per worker thread, plus one (the last) for the submitter.
    queues: Vec<Mutex<VecDeque<Job<'env>>>>,
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// Set once the region closure has returned and all tasks finished;
    /// workers exit instead of parking.
    done: AtomicBool,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// Wakes parked workers on new work and the joiner on completion.
    lock: Mutex<()>,
    cond: Condvar,
    /// First panic payload thrown by a task.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'env> Shared<'env> {
    fn new(queues: usize) -> Self {
        Shared {
            queues: (0..queues).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn push(&self, job: Job<'env>) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot].lock().unwrap().push_back(job);
        let _guard = self.lock.lock().unwrap();
        self.cond.notify_all();
    }

    /// Pop from `own`'s back, else steal from a sibling's front.
    fn take(&self, own: usize) -> Option<Job<'env>> {
        if let Some(job) = self.queues[own].lock().unwrap().pop_back() {
            return Some(job);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(job) = self.queues[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn run(&self, job: Job<'env>) {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(job)) {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.cond.notify_all();
        }
    }

    /// Worker loop: run tasks until the region is closed and drained.
    fn work(&self, own: usize) {
        loop {
            match self.take(own) {
                Some(job) => self.run(job),
                None => {
                    if self.done.load(Ordering::SeqCst) {
                        return;
                    }
                    let guard = self.lock.lock().unwrap();
                    // Re-check under the lock to avoid a lost wakeup between
                    // the failed take and parking.
                    if self.done.load(Ordering::SeqCst) || self.pending.load(Ordering::SeqCst) > 0 {
                        drop(guard);
                        continue;
                    }
                    let _ = self
                        .cond
                        .wait_timeout(guard, Duration::from_millis(10))
                        .unwrap();
                }
            }
        }
    }
}

/// Handle for spawning tasks into a fork-join region. See [`scope`].
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Submit a task. It may borrow anything outliving the [`scope`] call and
    /// runs at most once, on an arbitrary pool thread (possibly the caller
    /// during the join phase).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        self.shared.push(Box::new(f));
    }
}

/// Run a fork-join region on `threads` workers (clamped to at least 1; the
/// submitting thread also helps, so `threads == 1` still uses two queues but
/// no extra OS thread). Returns the region closure's value after every
/// spawned task has finished. Panics from tasks are re-thrown here.
pub fn scope<'env, R>(threads: usize, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
    let threads = threads.max(1);
    // Worker 0..extra are OS threads; the last queue belongs to the caller.
    let extra = threads - 1;
    let shared = Shared::new(extra + 1);
    let result = std::thread::scope(|ts| {
        for w in 0..extra {
            let shared = &shared;
            ts.spawn(move || shared.work(w));
        }
        let scope_handle = Scope { shared: &shared };
        let result = f(&scope_handle);
        // Join phase: the caller drains queues until nothing is pending.
        while shared.pending.load(Ordering::SeqCst) > 0 {
            match shared.take(extra) {
                Some(job) => shared.run(job),
                None => {
                    let guard = shared.lock.lock().unwrap();
                    if shared.pending.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    let _ = shared
                        .cond
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        }
        shared.done.store(true, Ordering::SeqCst);
        let _guard = shared.lock.lock().unwrap();
        shared.cond.notify_all();
        drop(_guard);
        result
    });
    if let Some(payload) = shared.panic.lock().unwrap().take() {
        panic::resume_unwind(payload);
    }
    result
}

/// The worker count a requested `threads` option resolves to: `0` means
/// "one per available core", anything else is taken literally.
pub fn num_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Map `f` over `items` on a fork-join region of `threads` workers,
/// preserving input order in the output (the parallel schedule never leaks
/// into the result). Items are dispatched in contiguous chunks so stealing
/// moves coarse units of work.
pub fn parallel_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = num_threads(threads.max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // More chunks than workers so stealing can rebalance skewed items.
    let chunks = (threads * 4).min(items.len());
    let chunk_size = items.len().div_ceil(chunks);
    let mut slots: Vec<Mutex<Option<Vec<U>>>> = Vec::new();
    let mut work: Vec<(usize, Vec<T>)> = Vec::new();
    let mut items = items;
    let mut idx = 0;
    while !items.is_empty() {
        let rest = items.split_off(chunk_size.min(items.len()));
        work.push((idx, std::mem::replace(&mut items, rest)));
        slots.push(Mutex::new(None));
        idx += 1;
    }
    let f = &f;
    let slots_ref = &slots;
    scope(threads, |s| {
        for (slot, chunk) in work {
            s.spawn(move || {
                let out: Vec<U> = chunk.into_iter().map(f).collect();
                *slots_ref[slot].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .flat_map(|m| {
            m.into_inner()
                .unwrap()
                .expect("scope joined every chunk task")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task() {
        let counter = AtomicU64::new(0);
        scope(4, |s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), (0..100).sum::<u64>());
    }

    #[test]
    fn scope_borrows_environment() {
        let data = vec![1, 2, 3];
        let total = AtomicU64::new(0);
        scope(2, |s| {
            for v in &data {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(*v, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let input: Vec<u64> = (0..257).collect();
            let out = parallel_map(threads, input.clone(), |x| x * 2);
            assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert_eq!(parallel_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn task_panic_propagates() {
        let result = panic::catch_unwind(|| {
            scope(3, |s| {
                for i in 0..16 {
                    s.spawn(move || {
                        if i == 7 {
                            panic!("boom");
                        }
                    });
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn num_threads_resolution() {
        assert!(num_threads(0) >= 1);
        assert_eq!(num_threads(3), 3);
    }
}
