//! Minimal `crossbeam` facade: an `mpsc`-backed `channel` module covering
//! the unbounded-channel subset the BGP session transport uses, and a scoped
//! fork-join worker [`pool`] used by the parallel policy compiler.

pub mod pool;

pub mod channel {
    //! Unbounded MPSC channels.

    use std::sync::mpsc;

    /// Sending half.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Send failure: the receiver is gone; returns the message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Blocking receive failure: all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueue a message.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Dequeue, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(42).unwrap();
            assert_eq!(rx.try_recv(), Ok(42));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
