//! Minimal, API-compatible subset of `proptest` for offline builds.
//!
//! Supports the surface the SDX property tests use: `proptest!` with an
//! optional `#![proptest_config(..)]` header, `Strategy` (`prop_map`,
//! `prop_recursive`, `boxed`), `Just`, `any`, integer ranges, tuples,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! `prop::sample::{select, Index}`, `prop_oneof!`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs' `Debug` formatting where available (the assert
//! message carries whatever context the test supplied). Generation is
//! deterministic per test function.

use std::rc::Rc;

pub mod test_runner {
    //! Runner configuration and case-level error type.

    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 128 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Input rejected by `prop_assume!` — generate a fresh case.
        Reject(String),
        /// Assertion failure — the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// Build a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Deterministic generator used to drive strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction; each test derives its seed from its name.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Stable 64-bit hash of a test name, for per-test seeds (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let this = Rc::new(self);
            BoxedStrategy {
                f: Rc::new(move |rng| this.sample(rng)),
            }
        }

        /// Recursively extend `self` (the leaf) through `f`, up to `depth`
        /// levels. `_desired_size` and `_expected_branch_size` are accepted
        /// for API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let expanded = f(cur).boxed();
                let l = leaf.clone();
                cur = BoxedStrategy {
                    f: Rc::new(move |rng: &mut TestRng| {
                        // Fall back to the leaf 1 time in 4 so trees thin out.
                        if rng.below(4) == 0 {
                            l.sample(rng)
                        } else {
                            expanded.sample(rng)
                        }
                    }),
                };
            }
            cur
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        pub(crate) f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Build from non-empty alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Integer types samplable from ranges and `any`.
    pub trait SampleUniform: Copy {
        /// Map to the u64 lattice.
        fn to_u64(self) -> u64;
        /// Map back from the u64 lattice.
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {
            $(impl SampleUniform for $t {
                fn to_u64(self) -> u64 { self as u64 }
                fn from_u64(v: u64) -> Self { v as $t }
            })*
        };
    }

    impl_sample_uniform!(u8, u16, u32, u64, usize);

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
            assert!(lo < hi, "empty range strategy");
            T::from_u64(lo + rng.below(hi - lo))
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
            assert!(lo <= hi, "empty range strategy");
            let span = hi - lo + 1;
            if span == 0 {
                return T::from_u64(rng.next_u64());
            }
            T::from_u64(lo + rng.below(span))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.sample(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    }

    /// `any::<T>()` strategy.
    #[derive(Debug, Clone)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value covering the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index::new(rng.next_u64() as usize)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Sampling from explicit pools.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed pool (`prop::sample::select`).
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }

    /// A strategy drawing uniformly from `items` (slice or `Vec`).
    pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
        let items = items.into();
        assert!(!items.is_empty(), "select from empty pool");
        Select { items }
    }

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn new(raw: usize) -> Self {
            Index(raw)
        }

        /// Resolve against a concrete non-empty length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo + 1) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    /// `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeSet` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; bound the retries so small pools
            // cannot loop forever.
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// A set whose target size is drawn from `size` (may come up short when
    /// the element pool is small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Option` of an inner strategy (`prop::option::of`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! The glob-import surface tests use.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// Keep `Rc` referenced at the crate root so the import above is not dead
// when only macros are used.
#[doc(hidden)]
pub type _RcGuard = Rc<()>;

/// Uniform choice among strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    }};
}

/// Property assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)*)
        );
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($a), stringify!($b), a, format!($($fmt)*)
        );
    }};
}

/// Reject the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` body runs
/// against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@blk ($cfg) $($rest)*);
    };
    (@blk ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(8).max(64);
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, config.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed (case {}):\n{}", stringify!($name), attempts, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@blk ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into()))
        })
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_in_bounds(x in 5u32..15, y in 0u8..=3) {
            prop_assert!((5..15).contains(&x));
            prop_assert!(y <= 3);
        }

        fn vec_sizes(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        fn select_picks_from_pool(x in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!(x == 1 || x == 3 || x == 5);
        }

        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        fn recursion_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} in {:?}", depth(&t), t);
        }

        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        fn index_resolves(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }
}
