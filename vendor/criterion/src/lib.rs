//! Minimal, API-compatible subset of `criterion` for offline builds.
//!
//! Under `cargo bench` (cargo passes `--bench` to harness-less bench
//! binaries) each benchmark runs `sample_size` timed iterations and prints
//! mean wall time. Under `cargo test` the benchmarks are skipped so the
//! test suite stays fast; the binaries still link and exit 0.

use std::fmt;
use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            bench_mode: self.bench_mode,
            _parent: self,
        }
    }

    /// Run a standalone benchmark (groupless form).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.bench_mode, id, 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    bench_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            self.bench_mode,
            &format!("{}/{}", self.name, id),
            self.sample_size,
            f,
        );
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            self.bench_mode,
            &format!("{}/{}", self.name, id),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Function-plus-parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(bench_mode: bool, id: &str, samples: usize, mut f: F) {
    if !bench_mode {
        // `cargo test` exercises bench binaries for link/exit health only.
        println!("bench {id}: skipped (test mode; run with `cargo bench`)");
        return;
    }
    let mut b = Bencher {
        samples,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total_nanos / b.iters as u128;
        println!("bench {id}: {} iters, mean {}", b.iters, fmt_nanos(mean));
    } else {
        println!("bench {id}: no iterations recorded");
    }
}

fn fmt_nanos(n: u128) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3} s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3} ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.3} us", n as f64 / 1e3)
    } else {
        format!("{n} ns")
    }
}

/// Collect benchmark functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($fun:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
