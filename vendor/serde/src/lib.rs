//! Minimal facade standing in for `serde` in an offline build.
//!
//! The derives are no-ops and the traits are blanket-implemented markers:
//! enough for `#[derive(Serialize, Deserialize)]` and `T: Serialize` bounds
//! to compile, with no serialization behavior behind them.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
impl<T: ?Sized> DeserializeOwned for T {}
